package textproc

// Porter stemmer, implemented from M.F. Porter, "An algorithm for suffix
// stripping" (Program, 1980). The local engine substitutes for Terrier,
// whose default English pipeline uses exactly this stemmer, so query and
// index terms normalize identically to the original system's.
//
// The implementation follows the reference description: a word is
// [C](VC)^m[V]; rules fire on suffix match subject to conditions on the
// measure m of the remaining stem and on letter patterns (*v*, *d, *o).

// Stem returns the Porter stem of a lowercase word. Words shorter than
// three letters are returned unchanged (the algorithm's k0 guard).
func Stem(word string) string {
	if len(word) < 3 {
		return word
	}
	s := stemmer{b: []byte(word), k: len(word) - 1}
	s.step1ab()
	s.step1c()
	s.step2()
	s.step3()
	s.step4()
	s.step5()
	return string(s.b[:s.k+1])
}

type stemmer struct {
	b []byte // working buffer
	k int    // index of last letter of the current word
	j int    // index of last letter of the stem, set by ends()
}

// cons reports whether b[i] is a consonant.
func (s *stemmer) cons(i int) bool {
	switch s.b[i] {
	case 'a', 'e', 'i', 'o', 'u':
		return false
	case 'y':
		if i == 0 {
			return true
		}
		return !s.cons(i - 1)
	default:
		return true
	}
}

// m measures the number of VC sequences in the stem b[0..j].
func (s *stemmer) m() int {
	n := 0
	i := 0
	for {
		if i > s.j {
			return n
		}
		if !s.cons(i) {
			break
		}
		i++
	}
	i++
	for {
		for {
			if i > s.j {
				return n
			}
			if s.cons(i) {
				break
			}
			i++
		}
		i++
		n++
		for {
			if i > s.j {
				return n
			}
			if !s.cons(i) {
				break
			}
			i++
		}
		i++
	}
}

// vowelInStem reports *v*: b[0..j] contains a vowel.
func (s *stemmer) vowelInStem() bool {
	for i := 0; i <= s.j; i++ {
		if !s.cons(i) {
			return true
		}
	}
	return false
}

// doubleC reports *d at position i: b[i-1..i] is a double consonant.
func (s *stemmer) doubleC(i int) bool {
	if i < 1 {
		return false
	}
	return s.b[i] == s.b[i-1] && s.cons(i)
}

// cvc reports *o at position i: b[i-2..i] is consonant-vowel-consonant
// with the final consonant not w, x or y. Used to restore a trailing e
// (cav(e), lov(e), hop(e)).
func (s *stemmer) cvc(i int) bool {
	if i < 2 || !s.cons(i) || s.cons(i-1) || !s.cons(i-2) {
		return false
	}
	switch s.b[i] {
	case 'w', 'x', 'y':
		return false
	}
	return true
}

// ends reports whether the word ends with suffix, setting j to just
// before the suffix when it does.
func (s *stemmer) ends(suffix string) bool {
	l := len(suffix)
	if l > s.k+1 {
		return false
	}
	if string(s.b[s.k+1-l:s.k+1]) != suffix {
		return false
	}
	s.j = s.k - l
	return true
}

// setTo replaces the suffix after j with repl and adjusts k.
func (s *stemmer) setTo(repl string) {
	s.b = append(s.b[:s.j+1], repl...)
	s.k = s.j + len(repl)
}

// r replaces the suffix with repl if the stem measure is positive.
func (s *stemmer) r(repl string) {
	if s.m() > 0 {
		s.setTo(repl)
	}
}

// step1ab removes plurals and -ed / -ing.
func (s *stemmer) step1ab() {
	if s.b[s.k] == 's' {
		switch {
		case s.ends("sses"):
			s.k -= 2
		case s.ends("ies"):
			s.setTo("i")
		case s.b[s.k-1] != 's':
			s.k--
		}
	}
	if s.ends("eed") {
		if s.m() > 0 {
			s.k--
		}
	} else if (s.ends("ed") || s.ends("ing")) && s.vowelInStem() {
		s.k = s.j
		switch {
		case s.ends("at"):
			s.setTo("ate")
		case s.ends("bl"):
			s.setTo("ble")
		case s.ends("iz"):
			s.setTo("ize")
		case s.doubleC(s.k):
			switch s.b[s.k] {
			case 'l', 's', 'z':
				// keep the double consonant
			default:
				s.k--
			}
		default:
			if s.m() == 1 && s.cvc(s.k) {
				s.j = s.k
				s.setTo("e")
			}
		}
	}
}

// step1c turns terminal y to i when there is another vowel in the stem.
func (s *stemmer) step1c() {
	if s.ends("y") && s.vowelInStem() {
		s.b[s.k] = 'i'
	}
}

// step2 maps double suffixes to single ones (-ization -> -ize etc.) when
// the stem measure is positive.
func (s *stemmer) step2() {
	if s.k < 1 {
		return
	}
	switch s.b[s.k-1] {
	case 'a':
		if s.ends("ational") {
			s.r("ate")
		} else if s.ends("tional") {
			s.r("tion")
		}
	case 'c':
		if s.ends("enci") {
			s.r("ence")
		} else if s.ends("anci") {
			s.r("ance")
		}
	case 'e':
		if s.ends("izer") {
			s.r("ize")
		}
	case 'l':
		if s.ends("abli") {
			s.r("able")
		} else if s.ends("alli") {
			s.r("al")
		} else if s.ends("entli") {
			s.r("ent")
		} else if s.ends("eli") {
			s.r("e")
		} else if s.ends("ousli") {
			s.r("ous")
		}
	case 'o':
		if s.ends("ization") {
			s.r("ize")
		} else if s.ends("ation") {
			s.r("ate")
		} else if s.ends("ator") {
			s.r("ate")
		}
	case 's':
		if s.ends("alism") {
			s.r("al")
		} else if s.ends("iveness") {
			s.r("ive")
		} else if s.ends("fulness") {
			s.r("ful")
		} else if s.ends("ousness") {
			s.r("ous")
		}
	case 't':
		if s.ends("aliti") {
			s.r("al")
		} else if s.ends("iviti") {
			s.r("ive")
		} else if s.ends("biliti") {
			s.r("ble")
		}
	}
}

// step3 handles -ic-, -full, -ness etc. with positive stem measure.
func (s *stemmer) step3() {
	switch s.b[s.k] {
	case 'e':
		if s.ends("icate") {
			s.r("ic")
		} else if s.ends("ative") {
			s.r("")
		} else if s.ends("alize") {
			s.r("al")
		}
	case 'i':
		if s.ends("iciti") {
			s.r("ic")
		}
	case 'l':
		if s.ends("ical") {
			s.r("ic")
		} else if s.ends("ful") {
			s.r("")
		}
	case 's':
		if s.ends("ness") {
			s.r("")
		}
	}
}

// step4 removes -ant, -ence etc. when the stem measure exceeds one.
func (s *stemmer) step4() {
	if s.k < 1 {
		return
	}
	matched := false
	switch s.b[s.k-1] {
	case 'a':
		matched = s.ends("al")
	case 'c':
		matched = s.ends("ance") || s.ends("ence")
	case 'e':
		matched = s.ends("er")
	case 'i':
		matched = s.ends("ic")
	case 'l':
		matched = s.ends("able") || s.ends("ible")
	case 'n':
		matched = s.ends("ant") || s.ends("ement") || s.ends("ment") || s.ends("ent")
	case 'o':
		if s.ends("ion") {
			if s.j >= 0 && (s.b[s.j] == 's' || s.b[s.j] == 't') {
				matched = true
			}
		} else {
			matched = s.ends("ou")
		}
	case 's':
		matched = s.ends("ism")
	case 't':
		matched = s.ends("ate") || s.ends("iti")
	case 'u':
		matched = s.ends("ous")
	case 'v':
		matched = s.ends("ive")
	case 'z':
		matched = s.ends("ize")
	}
	if matched && s.m() > 1 {
		s.k = s.j
	}
}

// step5 removes a final -e and collapses a final double l when the stem
// is long enough.
func (s *stemmer) step5() {
	s.j = s.k
	if s.b[s.k] == 'e' {
		a := s.m()
		if a > 1 || (a == 1 && !s.cvc(s.k-1)) {
			s.k--
		}
	}
	if s.b[s.k] == 'l' && s.doubleC(s.k) && s.m() > 1 {
		s.k--
	}
}
