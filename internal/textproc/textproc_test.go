package textproc

import (
	"reflect"
	"testing"
	"testing/quick"
)

// Canonical Porter vectors, each hand-traced against the 1980 paper's
// rules (several are the paper's own worked examples, e.g.
// generalizations -> gener and oscillators -> oscil).
var porterVectors = []struct{ in, want string }{
	// step 1a
	{"caresses", "caress"},
	{"ponies", "poni"},
	{"ties", "ti"},
	{"caress", "caress"},
	{"cats", "cat"},
	// step 1b
	{"feed", "feed"},
	{"agreed", "agre"},
	{"plastered", "plaster"},
	{"bled", "bled"},
	{"motoring", "motor"},
	{"sing", "sing"},
	{"conflated", "conflat"},
	{"troubled", "troubl"},
	{"sized", "size"},
	{"hopping", "hop"},
	{"tanned", "tan"},
	{"falling", "fall"},
	{"hissing", "hiss"},
	{"fizzed", "fizz"},
	{"failing", "fail"},
	{"filing", "file"},
	// step 1c
	{"happy", "happi"},
	{"sky", "sky"},
	// step 2
	{"relational", "relat"},
	{"conditional", "condit"},
	{"valenci", "valenc"},
	{"hesitanci", "hesit"},
	{"digitizer", "digit"},
	{"operator", "oper"},
	// step 3
	{"triplicate", "triplic"},
	{"formative", "form"},
	{"formalize", "formal"},
	{"electriciti", "electr"},
	{"electricity", "electr"},
	{"hopeful", "hope"},
	{"goodness", "good"},
	// step 4
	{"revival", "reviv"},
	{"allowance", "allow"},
	{"inference", "infer"},
	{"airliner", "airlin"},
	{"adjustable", "adjust"},
	{"effective", "effect"},
	{"adoption", "adopt"},
	// step 5
	{"rate", "rate"},
	{"probate", "probat"},
	{"cease", "ceas"},
	{"controll", "control"},
	{"roll", "roll"},
	// the paper's two long worked examples
	{"generalizations", "gener"},
	{"oscillators", "oscil"},
	// short words pass through
	{"a", "a"},
	{"is", "is"},
	{"be", "be"},
}

func TestPorterVectors(t *testing.T) {
	for _, v := range porterVectors {
		if got := Stem(v.in); got != v.want {
			t.Errorf("Stem(%q) = %q, want %q", v.in, got, v.want)
		}
	}
}

func TestPorterNeverPanicsOrEmpties(t *testing.T) {
	f := func(s string) bool {
		// Restrict to plausible lowercase tokens.
		word := ""
		for _, r := range s {
			if r >= 'a' && r <= 'z' {
				word += string(r)
			}
			if len(word) > 30 {
				break
			}
		}
		if len(word) < 3 {
			return Stem(word) == word
		}
		out := Stem(word)
		return out != "" && len(out) <= len(word)+1 // +1: e-restoration can extend
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

func TestTokenizerBasic(t *testing.T) {
	a := NewAnalyzer(AnalyzerConfig{DisableStemming: true})
	got := a.Terms("Hello, World! The quick-brown fox; and 42 things.")
	want := []string{"hello", "world", "quick", "brown", "fox", "42", "things"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Terms = %v, want %v", got, want)
	}
}

func TestTokenizerPositions(t *testing.T) {
	a := NewAnalyzer(AnalyzerConfig{DisableStemming: true})
	// "the" is a stopword but still consumes position 0; "of" consumes 2.
	toks := a.Tokens("the peer of networks")
	if len(toks) != 2 {
		t.Fatalf("tokens = %v", toks)
	}
	if toks[0].Term != "peer" || toks[0].Pos != 1 {
		t.Errorf("tok0 = %+v, want peer@1", toks[0])
	}
	if toks[1].Term != "networks" || toks[1].Pos != 3 {
		t.Errorf("tok1 = %+v, want networks@3", toks[1])
	}
}

func TestTokenizerStemming(t *testing.T) {
	got := Default.Terms("distributed retrieval engines")
	want := []string{"distribut", "retriev", "engin"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("stemmed terms = %v, want %v", got, want)
	}
}

func TestTokenizerQueryAndDocAgree(t *testing.T) {
	// The same analyzer must normalize query and document text to
	// identical terms — the property retrieval correctness depends on.
	doc := Default.Terms("Scalable Peer-to-Peer Text Retrieval")
	query := Default.Terms("scalability peers retrieving texts")
	// scalable/scalability stem differently (scalabl vs scalabil), but
	// peer/peers, text/texts, retrieval/retrieving must collide.
	contains := func(ts []string, w string) bool {
		for _, t := range ts {
			if t == w {
				return true
			}
		}
		return false
	}
	for _, w := range []string{"peer", "text", "retriev"} {
		if !contains(doc, w) || !contains(query, w) {
			t.Errorf("term %q missing: doc=%v query=%v", w, doc, query)
		}
	}
}

func TestUniqueTerms(t *testing.T) {
	a := NewAnalyzer(AnalyzerConfig{DisableStemming: true})
	got := a.UniqueTerms("data data network data network peer")
	want := []string{"data", "network", "peer"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("UniqueTerms = %v, want %v", got, want)
	}
}

func TestAnalyzerOptions(t *testing.T) {
	noNum := NewAnalyzer(AnalyzerConfig{DropNumbers: true, DisableStemming: true})
	if got := noNum.Terms("version 42 rocks"); !reflect.DeepEqual(got, []string{"version", "rocks"}) {
		t.Errorf("DropNumbers: %v", got)
	}
	noStop := NewAnalyzer(AnalyzerConfig{NoStopwords: true, DisableStemming: true})
	if got := noStop.Terms("the cat"); !reflect.DeepEqual(got, []string{"the", "cat"}) {
		t.Errorf("NoStopwords: %v", got)
	}
	extra := NewAnalyzer(AnalyzerConfig{ExtraStopwords: []string{"cat"}, DisableStemming: true})
	if got := extra.Terms("the cat sat"); !reflect.DeepEqual(got, []string{"sat"}) {
		t.Errorf("ExtraStopwords: %v", got)
	}
	long := NewAnalyzer(AnalyzerConfig{MinTermLen: 4, DisableStemming: true})
	if got := long.Terms("big elephant ant"); !reflect.DeepEqual(got, []string{"elephant"}) {
		t.Errorf("MinTermLen: %v", got)
	}
}

func TestTokenizerUnicode(t *testing.T) {
	a := NewAnalyzer(AnalyzerConfig{DisableStemming: true, NoStopwords: true})
	got := a.Terms("café naïve 北京 test")
	// Unicode letters are kept as term runes; the CJK string forms one token.
	want := []string{"café", "naïve", "北京", "test"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("unicode terms = %v, want %v", got, want)
	}
}

func TestTokenizerEmptyAndPunctuation(t *testing.T) {
	if got := Default.Terms(""); len(got) != 0 {
		t.Errorf("empty text: %v", got)
	}
	if got := Default.Terms("!!! ... --- ???"); len(got) != 0 {
		t.Errorf("punctuation only: %v", got)
	}
}
