package telemetry

import (
	"net/http"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
)

func TestRegistryGatherSortsAndSnapshots(t *testing.T) {
	r := NewRegistry()
	var hits atomic.Int64
	r.RegisterCounter("zeta_total", "last alphabetically", func(emit func(float64, ...Label)) {
		emit(float64(hits.Load()))
	})
	r.RegisterGauge("alpha", "first alphabetically", func(emit func(float64, ...Label)) {
		emit(2, L("b", "2"))
		emit(1, L("a", "1"))
	})

	hits.Store(7)
	fams := r.Gather()
	if len(fams) != 2 || fams[0].Name != "alpha" || fams[1].Name != "zeta_total" {
		t.Fatalf("families not sorted by name: %+v", fams)
	}
	if fams[1].Samples[0].Value != 7 {
		t.Fatalf("counter snapshot = %v, want 7", fams[1].Samples[0].Value)
	}
	// Samples sorted by label signature.
	if fams[0].Samples[0].Labels[0] != L("a", "1") {
		t.Fatalf("samples not sorted: %+v", fams[0].Samples)
	}
	if got := r.Names(); !reflect.DeepEqual(got, []string{"alpha", "zeta_total"}) {
		t.Fatalf("Names() = %v", got)
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	r := NewRegistry()
	r.RegisterGauge("dup", "", func(emit func(float64, ...Label)) {})
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Register did not panic")
		}
	}()
	r.RegisterGauge("dup", "", func(emit func(float64, ...Label)) {})
}

func TestServeScrapesOverHTTP(t *testing.T) {
	r := NewRegistry()
	r.RegisterCounter("hits_total", "requests served", func(emit func(float64, ...Label)) {
		emit(3, L("code", "200"))
	})
	srv, err := r.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + srv.Addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc, err := ParseText(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := sc.Value("hits_total", L("code", "200")); !ok || v != 3 {
		t.Fatalf("scraped hits_total = %v (ok=%v), want 3", v, ok)
	}
	if sc.Types["hits_total"] != "counter" {
		t.Fatalf("scraped type = %q, want counter", sc.Types["hits_total"])
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.RegisterGauge("weird", "", func(emit func(float64, ...Label)) {
		emit(1, L("v", `a"b\c`+"\nd"))
	})
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	sc, err := ParseText(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("parse of %q: %v", b.String(), err)
	}
	if v, ok := sc.Value("weird", L("v", `a"b\c`+"\nd")); !ok || v != 1 {
		t.Fatalf("escaped label did not round-trip: %q", b.String())
	}
}
