// Package telemetry is AlvisP2P's observability layer: one metric
// Registry per peer exposing the counters the system already computes
// (transport meters, admission-control statistics, storage gauges,
// replication transfer counters, per-peer latency EWMAs) in the
// Prometheus text exposition format, plus per-query trace spans
// (trace.go) that follow a search through resolver, probes, hedges and
// merging.
//
// The registry is collector-based: sources keep their own state (an
// atomic counter, an EWMA table, a store) and register a function that
// emits current samples at scrape time. Simulation experiments and the
// real cluster therefore share one measurement vocabulary — the same
// registry a sim test reads in-process is what cmd/alvisp2p serves on
// its /metrics endpoint, with identical metric names.
package telemetry

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// ValueType is a metric family's Prometheus type.
type ValueType string

const (
	// Counter is a monotonically increasing total.
	Counter ValueType = "counter"
	// Gauge is a level that can go up and down.
	Gauge ValueType = "gauge"
)

// Label is one name="value" pair attached to a sample.
type Label struct {
	Name  string
	Value string
}

// L is shorthand for constructing a Label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

// Sample is one measured value with its labels.
type Sample struct {
	Labels []Label
	Value  float64
}

// Desc describes a metric family: its stable name (the dashboard
// contract), a help line and the Prometheus type.
type Desc struct {
	Name string
	Help string
	Type ValueType
}

// CollectFunc emits a family's current samples. It is called at scrape
// time with the registry lock held, so it must not call back into the
// registry; emitting zero samples is fine (the family still appears in
// the exposition with its HELP/TYPE header, keeping the name vocabulary
// stable whether or not the source has data yet).
type CollectFunc func(emit func(value float64, labels ...Label))

type family struct {
	desc    Desc
	collect CollectFunc
}

// Registry is a set of metric families gathered on demand. It is safe
// for concurrent use.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Register adds a family. Registering a duplicate name panics: two
// sources silently sharing a name would corrupt the exposition.
func (r *Registry) Register(d Desc, f CollectFunc) {
	if d.Name == "" || f == nil {
		panic("telemetry: Register needs a name and a collector")
	}
	if d.Type == "" {
		d.Type = Gauge
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.families[d.Name]; dup {
		panic(fmt.Sprintf("telemetry: duplicate metric %q", d.Name))
	}
	r.families[d.Name] = &family{desc: d, collect: f}
}

// RegisterCounter is Register with Type pre-set to Counter.
func (r *Registry) RegisterCounter(name, help string, f CollectFunc) {
	r.Register(Desc{Name: name, Help: help, Type: Counter}, f)
}

// RegisterGauge is Register with Type pre-set to Gauge.
func (r *Registry) RegisterGauge(name, help string, f CollectFunc) {
	r.Register(Desc{Name: name, Help: help, Type: Gauge}, f)
}

// Family is one gathered metric family: its description and the samples
// collected at gather time, sorted by label signature.
type Family struct {
	Desc
	Samples []Sample
}

// Gather collects every family, sorted by name. Sample order within a
// family is deterministic (sorted by rendered label signature), so two
// gathers over identical state produce identical output.
func (r *Registry) Gather() []Family {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Family, 0, len(r.families))
	for _, fam := range r.families {
		g := Family{Desc: fam.desc}
		fam.collect(func(value float64, labels ...Label) {
			g.Samples = append(g.Samples, Sample{Labels: labels, Value: value})
		})
		sort.SliceStable(g.Samples, func(i, j int) bool {
			return labelSignature(g.Samples[i].Labels) < labelSignature(g.Samples[j].Labels)
		})
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Names returns the sorted family names — the registry's vocabulary.
// The cluster tests assert that a simulated peer and a scraped real
// process expose identical name sets.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.families))
	for name := range r.families {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// WriteText renders the registry in the Prometheus text exposition
// format (version 0.0.4): HELP and TYPE headers for every family —
// including empty ones, keeping the vocabulary visible — followed by one
// line per sample.
func (r *Registry) WriteText(w io.Writer) error {
	for _, fam := range r.Gather() {
		if fam.Help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", fam.Name, escapeHelp(fam.Help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", fam.Name, fam.Type); err != nil {
			return err
		}
		for _, s := range fam.Samples {
			if _, err := fmt.Fprintf(w, "%s%s %s\n", fam.Name, labelSignature(s.Labels), formatValue(s.Value)); err != nil {
				return err
			}
		}
	}
	return nil
}

// Handler returns an http.Handler serving the exposition — what
// cmd/alvisp2p mounts at /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WriteText(w)
	})
}

// MetricsServer is a running /metrics HTTP listener; Close stops it.
type MetricsServer struct {
	// Addr is the concrete bound address (host:port) — with a ":0"
	// request this carries the OS-assigned port the harness parses.
	Addr string

	ln   net.Listener
	srv  *http.Server
	done chan struct{} // closed when the serve loop has exited
}

// Serve binds addr (e.g. "127.0.0.1:0") and serves the registry at
// /metrics until Close. It returns once the listener is bound, so the
// reported Addr is immediately scrapable.
func (r *Registry) Serve(addr string) (*MetricsServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", r.Handler())
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	ms := &MetricsServer{Addr: ln.Addr().String(), ln: ln, srv: srv, done: make(chan struct{})}
	go func() {
		defer close(ms.done)
		_ = srv.Serve(ln)
	}()
	return ms, nil
}

// Close stops the metrics listener and waits for the serve loop to
// exit. Idempotent.
func (ms *MetricsServer) Close() error {
	err := ms.srv.Close()
	<-ms.done
	return err
}

// labelSignature renders labels as {a="x",b="y"} in sorted-name order
// ("" for no labels) — both the exposition syntax and the sample sort
// key.
func labelSignature(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := make([]Label, len(labels))
	copy(ls, labels)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabelValue escapes a label value per the exposition format.
func escapeLabelValue(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

// escapeHelp escapes a HELP line per the exposition format.
func escapeHelp(h string) string {
	h = strings.ReplaceAll(h, `\`, `\\`)
	h = strings.ReplaceAll(h, "\n", `\n`)
	return h
}

// formatValue renders a sample value the way Prometheus clients do:
// shortest round-trippable representation.
func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
