package telemetry

import (
	"strings"
	"testing"
)

// TestExpositionGolden pins the exact text exposition byte-for-byte:
// dashboards and the harness scraper key on stable names, types, label
// order and value formatting, so any drift here is a breaking change.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	r.RegisterCounter("alvis_transport_messages_total", "messages sent and received, by frame type",
		func(emit func(float64, ...Label)) {
			emit(42, L("type", "0x12"))
			emit(7, L("type", "0x10"))
		})
	r.RegisterGauge("alvis_admission_inflight", "handlers currently executing",
		func(emit func(float64, ...Label)) { emit(3) })
	r.RegisterCounter("alvis_admission_sheds_total", "requests refused before work",
		func(emit func(float64, ...Label)) {}) // empty family: header still emitted
	r.RegisterGauge("alvis_remote_latency_ewma_seconds", "per-peer round-trip EWMA",
		func(emit func(float64, ...Label)) { emit(0.0125, L("peer", "127.0.0.1:4001")) })

	const golden = `# HELP alvis_admission_inflight handlers currently executing
# TYPE alvis_admission_inflight gauge
alvis_admission_inflight 3
# HELP alvis_admission_sheds_total requests refused before work
# TYPE alvis_admission_sheds_total counter
# HELP alvis_remote_latency_ewma_seconds per-peer round-trip EWMA
# TYPE alvis_remote_latency_ewma_seconds gauge
alvis_remote_latency_ewma_seconds{peer="127.0.0.1:4001"} 0.0125
# HELP alvis_transport_messages_total messages sent and received, by frame type
# TYPE alvis_transport_messages_total counter
alvis_transport_messages_total{type="0x10"} 7
alvis_transport_messages_total{type="0x12"} 42
`
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if b.String() != golden {
		t.Fatalf("exposition drifted from golden.\n--- got ---\n%s\n--- want ---\n%s", b.String(), golden)
	}
}

// TestExpositionParseRoundTrip proves the scraper reads back exactly
// what the registry wrote: every sample, every type, every label.
func TestExpositionParseRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.RegisterCounter("a_total", "help a", func(emit func(float64, ...Label)) {
		emit(1.5, L("x", "1"), L("y", "two"))
		emit(2, L("x", "2"))
	})
	r.RegisterGauge("b", "help b", func(emit func(float64, ...Label)) { emit(-3) })
	r.RegisterGauge("empty", "no samples yet", func(emit func(float64, ...Label)) {})

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	sc, err := ParseText(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}

	if got, want := sc.Names(), []string{"a_total", "b", "empty"}; len(got) != len(want) {
		t.Fatalf("names = %v, want %v", got, want)
	} else {
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("names = %v, want %v", got, want)
			}
		}
	}
	if sc.Types["a_total"] != "counter" || sc.Types["b"] != "gauge" || sc.Types["empty"] != "gauge" {
		t.Fatalf("types = %v", sc.Types)
	}
	if v, ok := sc.Value("a_total", L("x", "1"), L("y", "two")); !ok || v != 1.5 {
		t.Fatalf("a_total{x=1,y=two} = %v ok=%v", v, ok)
	}
	if v, ok := sc.Value("b"); !ok || v != -3 {
		t.Fatalf("b = %v ok=%v", v, ok)
	}
	if sum := sc.Sum("a_total"); sum != 3.5 {
		t.Fatalf("Sum(a_total) = %v, want 3.5", sum)
	}
	if sum := sc.Sum("empty"); sum != 0 {
		t.Fatalf("Sum(empty) = %v, want 0", sum)
	}
}
