package telemetry

import (
	"context"
	"encoding/json"
	"sync"
	"testing"
)

func TestSpanTreeAndContextPlumbing(t *testing.T) {
	root := NewRootSpan("search")
	ctx := ContextWithSpan(context.Background(), root)

	cctx, probe := StartSpan(ctx, "probe")
	if probe == nil {
		t.Fatal("StartSpan under a root returned nil span")
	}
	probe.SetAttr("keys", "3")
	if _, rpc := StartSpan(cctx, "rpc"); rpc == nil {
		t.Fatal("grandchild span not created")
	}
	probe.Finish()
	root.Finish()

	if got := root.Find("probe"); got != probe {
		t.Fatalf("Find(probe) = %v", got)
	}
	if root.Find("rpc") == nil {
		t.Fatal("Find(rpc) did not descend")
	}
	if root.Find("absent") != nil {
		t.Fatal("Find(absent) should be nil")
	}
	if probe.Attr("keys") != "3" {
		t.Fatalf("attr = %q", probe.Attr("keys"))
	}
}

func TestStartSpanWithoutCollectorIsNoop(t *testing.T) {
	ctx, sp := StartSpan(context.Background(), "anything")
	if sp != nil {
		t.Fatal("span created with no active parent")
	}
	if SpanFromContext(ctx) != nil {
		t.Fatal("context gained a span")
	}
	// All operations on nil spans are safe no-ops.
	sp.Finish()
	sp.SetAttr("k", "v")
	if sp.NewChild("c") != nil || sp.Find("x") != nil || sp.Name() != "" || sp.JSON() != "null" {
		t.Fatal("nil-span operations not inert")
	}
}

func TestSpanConcurrentChildren(t *testing.T) {
	root := NewRootSpan("fanout")
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := root.NewChild("worker")
			c.SetAttr("k", "v")
			c.Finish()
		}()
	}
	wg.Wait()
	root.Finish()
	if got := len(root.Children()); got != 32 {
		t.Fatalf("children = %d, want 32", got)
	}
}

func TestSpanJSONShape(t *testing.T) {
	root := NewRootSpan("search")
	child := root.NewChild("hedge")
	child.SetAttr("winner", "peer2")
	child.Finish()
	root.Finish()

	var v struct {
		Name       string `json:"name"`
		DurationUS *int64 `json:"duration_us"`
		Children   []struct {
			Name  string            `json:"name"`
			Attrs map[string]string `json:"attrs"`
		} `json:"children"`
	}
	if err := json.Unmarshal([]byte(root.JSON()), &v); err != nil {
		t.Fatalf("JSON() not parseable: %v", err)
	}
	if v.Name != "search" || v.DurationUS == nil {
		t.Fatalf("bad root: %+v", v)
	}
	if len(v.Children) != 1 || v.Children[0].Name != "hedge" || v.Children[0].Attrs["winner"] != "peer2" {
		t.Fatalf("bad children: %+v", v.Children)
	}
}
