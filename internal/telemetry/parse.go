package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// ParsedSample is one sample line of a scraped exposition.
type ParsedSample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// Scrape is a parsed Prometheus text exposition: the cluster harness
// fetches each node's /metrics and reads counters out of this.
type Scrape struct {
	// Types maps family name -> declared TYPE ("counter", "gauge").
	// Families appear here even when they carried no samples.
	Types map[string]string
	// Samples holds every sample line in input order.
	Samples []ParsedSample
}

// ParseText parses the Prometheus text exposition format produced by
// Registry.WriteText (a practical subset of the full 0.0.4 grammar:
// HELP/TYPE comments, sample lines with optional labels; no exemplars
// or timestamps, which the registry never emits).
func ParseText(r io.Reader) (*Scrape, error) {
	s := &Scrape{Types: make(map[string]string)}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 4 && fields[1] == "TYPE" {
				s.Types[fields[2]] = fields[3]
			}
			continue
		}
		sample, err := parseSampleLine(line)
		if err != nil {
			return nil, fmt.Errorf("telemetry: parse line %d: %w", lineNo, err)
		}
		s.Samples = append(s.Samples, sample)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return s, nil
}

func parseSampleLine(line string) (ParsedSample, error) {
	var name, labelPart, valuePart string
	if open := strings.IndexByte(line, '{'); open >= 0 {
		close := strings.LastIndexByte(line, '}')
		if close < open {
			return ParsedSample{}, fmt.Errorf("unbalanced braces in %q", line)
		}
		name = line[:open]
		labelPart = line[open+1 : close]
		valuePart = strings.TrimSpace(line[close+1:])
	} else {
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return ParsedSample{}, fmt.Errorf("want 'name value', got %q", line)
		}
		name, valuePart = fields[0], fields[1]
	}
	v, err := strconv.ParseFloat(valuePart, 64)
	if err != nil {
		return ParsedSample{}, fmt.Errorf("bad value %q: %w", valuePart, err)
	}
	labels, err := parseLabels(labelPart)
	if err != nil {
		return ParsedSample{}, err
	}
	return ParsedSample{Name: name, Labels: labels, Value: v}, nil
}

// parseLabels parses `a="x",b="y"` honouring escaped quotes.
func parseLabels(s string) (map[string]string, error) {
	if s == "" {
		return nil, nil
	}
	out := make(map[string]string)
	i := 0
	for i < len(s) {
		eq := strings.IndexByte(s[i:], '=')
		if eq < 0 {
			return nil, fmt.Errorf("bad label segment %q", s[i:])
		}
		name := strings.TrimSpace(s[i : i+eq])
		i += eq + 1
		if i >= len(s) || s[i] != '"' {
			return nil, fmt.Errorf("label %q value not quoted", name)
		}
		i++
		var b strings.Builder
		for i < len(s) {
			c := s[i]
			if c == '\\' && i+1 < len(s) {
				switch s[i+1] {
				case 'n':
					b.WriteByte('\n')
				default:
					b.WriteByte(s[i+1])
				}
				i += 2
				continue
			}
			if c == '"' {
				break
			}
			b.WriteByte(c)
			i++
		}
		if i >= len(s) || s[i] != '"' {
			return nil, fmt.Errorf("label %q value unterminated", name)
		}
		i++ // closing quote
		out[name] = b.String()
		if i < len(s) {
			if s[i] != ',' {
				return nil, fmt.Errorf("expected ',' at %q", s[i:])
			}
			i++
		}
	}
	return out, nil
}

// Value returns the single sample of name with exactly the given labels;
// ok is false when absent.
func (s *Scrape) Value(name string, labels ...Label) (float64, bool) {
	for _, ps := range s.Samples {
		if ps.Name != name || len(ps.Labels) != len(labels) {
			continue
		}
		match := true
		for _, l := range labels {
			if ps.Labels[l.Name] != l.Value {
				match = false
				break
			}
		}
		if match {
			return ps.Value, true
		}
	}
	return 0, false
}

// Sum returns the sum of every sample of name across all label sets
// (0 when the family has no samples).
func (s *Scrape) Sum(name string) float64 {
	var sum float64
	for _, ps := range s.Samples {
		if ps.Name == name {
			sum += ps.Value
		}
	}
	return sum
}

// Names returns the sorted family names the scrape declared (via TYPE
// headers), whether or not they carried samples.
func (s *Scrape) Names() []string {
	out := make([]string, 0, len(s.Types))
	for name := range s.Types {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
