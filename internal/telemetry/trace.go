package telemetry

import (
	"context"
	"encoding/json"
	"sync"
	"time"
)

// Span is one timed step of a traced operation, forming a tree: a
// search's root span has children for resolver work, lattice probes,
// hedged escalations, ranking and presentation. Spans are safe for
// concurrent use — batch fan-outs add children from worker goroutines.
//
// All methods are nil-receiver safe: instrumented code paths call
// StartSpan unconditionally, and when the context carries no span (the
// caller didn't ask for a trace) every operation is a cheap no-op.
type Span struct {
	mu       sync.Mutex
	name     string
	start    time.Time
	end      time.Time
	attrs    map[string]string
	children []*Span
}

// NewRootSpan starts a new top-level span.
func NewRootSpan(name string) *Span {
	return &Span{name: name, start: time.Now()}
}

// Name returns the span's name ("" on nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Finish stamps the span's end time (first call wins).
func (s *Span) Finish() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.end.IsZero() {
		s.end = time.Now()
	}
	s.mu.Unlock()
}

// SetAttr attaches a key=value annotation.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.attrs == nil {
		s.attrs = make(map[string]string)
	}
	s.attrs[key] = value
	s.mu.Unlock()
}

// Attr returns an annotation's value ("" when absent or on nil).
func (s *Span) Attr(key string) string {
	if s == nil {
		return ""
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.attrs[key]
}

// NewChild starts a child span (nil parent returns nil, keeping whole
// call chains free when tracing is off).
func (s *Span) NewChild(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{name: name, start: time.Now()}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// Children returns a snapshot of the span's children.
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Span, len(s.children))
	copy(out, s.children)
	return out
}

// Find returns the first descendant (depth-first, self included) with
// the given name, or nil — what the span-shape tests navigate by.
func (s *Span) Find(name string) *Span {
	if s == nil {
		return nil
	}
	if s.Name() == name {
		return s
	}
	for _, c := range s.Children() {
		if hit := c.Find(name); hit != nil {
			return hit
		}
	}
	return nil
}

// Duration returns end-start (time-to-now for an unfinished span).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.end.IsZero() {
		return time.Since(s.start)
	}
	return s.end.Sub(s.start)
}

// spanJSON is the wire shape of a dumped span.
type spanJSON struct {
	Name       string            `json:"name"`
	Start      time.Time         `json:"start"`
	DurationUS int64             `json:"duration_us"`
	Attrs      map[string]string `json:"attrs,omitempty"`
	Children   []spanJSON        `json:"children,omitempty"`
}

func (s *Span) view() spanJSON {
	s.mu.Lock()
	v := spanJSON{Name: s.name, Start: s.start}
	end := s.end
	if end.IsZero() {
		end = time.Now()
	}
	v.DurationUS = end.Sub(s.start).Microseconds()
	if len(s.attrs) > 0 {
		v.Attrs = make(map[string]string, len(s.attrs))
		for k, val := range s.attrs {
			v.Attrs[k] = val
		}
	}
	children := make([]*Span, len(s.children))
	copy(children, s.children)
	s.mu.Unlock()
	for _, c := range children {
		v.Children = append(v.Children, c.view())
	}
	return v
}

// MarshalJSON renders the span tree as JSON — the per-query trace dump.
func (s *Span) MarshalJSON() ([]byte, error) {
	if s == nil {
		return []byte("null"), nil
	}
	return json.Marshal(s.view())
}

// JSON renders the span tree as indented JSON, for logs and artifacts.
func (s *Span) JSON() string {
	if s == nil {
		return "null"
	}
	b, err := json.MarshalIndent(s.view(), "", "  ")
	if err != nil {
		return "null"
	}
	return string(b)
}

// spanKey is the context key carrying the active span.
type spanKey struct{}

// ContextWithSpan returns ctx carrying s as the active span (ctx
// unchanged when s is nil).
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanKey{}, s)
}

// SpanFromContext returns the active span, or nil.
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}

// StartSpan opens a child of the context's active span and returns a
// context carrying the child. When the context has no span — tracing is
// off — it returns ctx unchanged and a nil span, so instrumentation
// costs one context lookup and nothing else.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent := SpanFromContext(ctx)
	if parent == nil {
		return ctx, nil
	}
	child := parent.NewChild(name)
	return ContextWithSpan(ctx, child), child
}
