package loadstat

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/transport"
)

func TestObserveAndEstimate(t *testing.T) {
	tr := NewTracker()
	if _, ok := tr.Estimate("a"); ok {
		t.Fatal("unobserved peer must have no estimate")
	}
	tr.Observe("a", 10*time.Millisecond)
	if d, ok := tr.Estimate("a"); !ok || d != 10*time.Millisecond {
		t.Fatalf("first observation should seed the EWMA, got %v %v", d, ok)
	}
	// The EWMA moves toward new observations without jumping.
	tr.Observe("a", 50*time.Millisecond)
	d, _ := tr.Estimate("a")
	if d <= 10*time.Millisecond || d >= 50*time.Millisecond {
		t.Fatalf("EWMA = %v, want strictly between 10ms and 50ms", d)
	}
	tr.Observe("a", -time.Second) // ignored
	if d2, _ := tr.Estimate("a"); d2 != d {
		t.Fatalf("negative observation must be ignored, %v -> %v", d, d2)
	}
	tr.Forget("a")
	if _, ok := tr.Estimate("a"); ok {
		t.Fatal("Forget must drop the estimate")
	}
}

func TestRankDemotesSlowPeer(t *testing.T) {
	tr := NewTracker()
	tr.Observe("slow", 120*time.Millisecond)
	tr.Observe("fast", 2*time.Millisecond)
	addrs := []transport.Addr{"slow", "unknown", "fast"}
	tr.Rank(addrs)
	if addrs[2] != "slow" {
		t.Fatalf("slow peer must rank last, got %v", addrs)
	}
	// unknown (bucket 0) before fast (bucket 2): optimism over evidence.
	if addrs[0] != "unknown" || addrs[1] != "fast" {
		t.Fatalf("order = %v, want [unknown fast slow]", addrs)
	}
}

// TestRankStableWithoutObservations: with nothing observed the input
// order is preserved byte for byte — the property that keeps the
// hash-rotated replica order (and its determinism tests) intact until
// real load signal exists.
func TestRankStableWithoutObservations(t *testing.T) {
	tr := NewTracker()
	addrs := []transport.Addr{"c", "a", "b"}
	tr.Rank(addrs)
	if addrs[0] != "c" || addrs[1] != "a" || addrs[2] != "b" {
		t.Fatalf("order changed without observations: %v", addrs)
	}
	// Sub-quantum differences also leave the order alone.
	tr.Observe("c", 100*time.Microsecond)
	tr.Observe("a", 900*time.Microsecond)
	tr.Rank(addrs)
	if addrs[0] != "c" || addrs[1] != "a" || addrs[2] != "b" {
		t.Fatalf("sub-millisecond jitter must not reorder: %v", addrs)
	}
}

func TestTrackerConcurrency(t *testing.T) {
	tr := NewTracker()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			addrs := []transport.Addr{"p0", "p1", "p2", "p3"}
			for i := 0; i < 500; i++ {
				tr.Observe(addrs[i%4], time.Duration(1+i%7)*time.Millisecond)
				local := append([]transport.Addr(nil), addrs...)
				tr.Rank(local)
				_, _ = tr.Estimate(addrs[(i+g)%4])
			}
		}(g)
	}
	wg.Wait()
	if tr.Len() != 4 {
		t.Fatalf("tracked peers = %d, want 4", tr.Len())
	}
}

func TestRankManyPeersDeterministic(t *testing.T) {
	tr := NewTracker()
	var addrs []transport.Addr
	for i := 0; i < 16; i++ {
		addrs = append(addrs, transport.Addr(fmt.Sprintf("p%02d", i)))
	}
	tr.Observe("p05", 80*time.Millisecond)
	tr.Observe("p11", 40*time.Millisecond)
	a := append([]transport.Addr(nil), addrs...)
	b := append([]transport.Addr(nil), addrs...)
	tr.Rank(a)
	tr.Rank(b)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("ranking not deterministic at %d: %v vs %v", i, a, b)
		}
	}
	if a[len(a)-1] != "p05" || a[len(a)-2] != "p11" {
		t.Fatalf("slowest peers must sink to the end: %v", a)
	}
}

// TestIdleDecayRecoversSlowPeer pins the satellite fix: a peer that was
// once slow and is then never selected again (because the ranking it
// earned repels traffic) must drift back toward the fleet median after
// idle windows elapse, instead of staying demoted forever.
func TestIdleDecayRecoversSlowPeer(t *testing.T) {
	tr := NewTracker()
	now := time.Unix(1000, 0)
	tr.clock = func() time.Time { return now }
	tr.EnableIdleDecay(time.Second)

	fast1, fast2, slow := transport.Addr("f1"), transport.Addr("f2"), transport.Addr("slow")
	tr.Observe(fast1, 1*time.Millisecond)
	tr.Observe(fast2, 1*time.Millisecond)
	tr.Observe(slow, 100*time.Millisecond)

	order := []transport.Addr{slow, fast1, fast2}
	tr.Rank(order)
	if order[2] != slow {
		t.Fatalf("slow peer not demoted before decay: %v", order)
	}

	// The fast peers keep being observed and ranked (every read ranks,
	// which is what applies the lazy decay); slow goes idle.
	for i := 0; i < 20; i++ {
		now = now.Add(time.Second)
		tr.Observe(fast1, 1*time.Millisecond)
		tr.Observe(fast2, 1*time.Millisecond)
		tr.Rank([]transport.Addr{fast1, fast2})
	}

	est, ok := tr.Estimate(slow)
	if !ok {
		t.Fatal("slow peer lost from tracker")
	}
	if est >= 100*time.Millisecond {
		t.Fatalf("idle EWMA never decayed: still %v", est)
	}
	// 20 idle windows at step /4 toward a ~1ms median pull 100ms well
	// under the 1ms ranking quantum of the fleet, so the peer rejoins
	// the top bucket and input order wins again.
	order = []transport.Addr{slow, fast1, fast2}
	tr.Rank(order)
	if order[0] != slow {
		t.Fatalf("recovered peer still demoted: %v (estimate %v)", order, est)
	}
}

// TestIdleDecayOffByDefault pins that a tracker without EnableIdleDecay
// behaves exactly as before: estimates are immortal.
func TestIdleDecayOffByDefault(t *testing.T) {
	tr := NewTracker()
	now := time.Unix(1000, 0)
	tr.clock = func() time.Time { return now }
	tr.Observe(transport.Addr("a"), 1*time.Millisecond)
	tr.Observe(transport.Addr("b"), 80*time.Millisecond)
	now = now.Add(time.Hour)
	if est, _ := tr.Estimate(transport.Addr("b")); est != 80*time.Millisecond {
		t.Fatalf("estimate changed without idle decay enabled: %v", est)
	}
}

// TestIdleDecayCapsBacklog: a peer idle for far longer than
// maxIdleSteps windows converges in one bounded sweep and does not owe
// an unbounded replay of steps.
func TestIdleDecayCapsBacklog(t *testing.T) {
	tr := NewTracker()
	now := time.Unix(1000, 0)
	tr.clock = func() time.Time { return now }
	tr.EnableIdleDecay(time.Second)
	tr.Observe(transport.Addr("a"), 1*time.Millisecond)
	tr.Observe(transport.Addr("b"), 1*time.Millisecond)
	tr.Observe(transport.Addr("slow"), 200*time.Millisecond)
	now = now.Add(24 * time.Hour)
	est, _ := tr.Estimate(transport.Addr("slow"))
	// 8 capped steps toward ~1ms: 200ms * (3/4)^8 ≈ 20ms, plus the
	// median contribution. The point is it moved a lot and stopped.
	if est >= 100*time.Millisecond || est < 1*time.Millisecond {
		t.Fatalf("capped decay out of range: %v", est)
	}
}

func TestKeyRateObserveAndDecay(t *testing.T) {
	kr := NewKeyRate(time.Second, 16)
	now := time.Unix(500, 0)
	kr.clock = func() time.Time { return now }
	for i := 0; i < 8; i++ {
		kr.Observe("hot")
	}
	kr.Observe("cold")
	if s := kr.Score("hot"); s < 7.9 || s > 8.1 {
		t.Fatalf("hot score = %v, want ~8", s)
	}
	hot := kr.Hot(4)
	if len(hot) != 1 || hot[0] != "hot" {
		t.Fatalf("Hot(4) = %v, want [hot]", hot)
	}
	now = now.Add(time.Second) // one half-life
	if s := kr.Score("hot"); s < 3.9 || s > 4.1 {
		t.Fatalf("decayed score = %v, want ~4", s)
	}
	now = now.Add(10 * time.Second)
	if got := kr.Hot(0.5); len(got) != 0 {
		t.Fatalf("fully decayed keys still hot: %v", got)
	}
}

func TestKeyRateBounded(t *testing.T) {
	kr := NewKeyRate(time.Minute, 4)
	now := time.Unix(500, 0)
	kr.clock = func() time.Time { return now }
	// One genuinely hot key, then a long tail of one-off keys.
	for i := 0; i < 10; i++ {
		kr.Observe("hot")
	}
	for i := 0; i < 100; i++ {
		now = now.Add(time.Millisecond)
		kr.Observe(fmt.Sprintf("tail-%03d", i))
	}
	if kr.Len() > 4 {
		t.Fatalf("table unbounded: %d keys", kr.Len())
	}
	if s := kr.Score("hot"); s < 9 {
		t.Fatalf("hot key evicted by the tail (score %v)", s)
	}
}
