package loadstat

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/transport"
)

func TestObserveAndEstimate(t *testing.T) {
	tr := NewTracker()
	if _, ok := tr.Estimate("a"); ok {
		t.Fatal("unobserved peer must have no estimate")
	}
	tr.Observe("a", 10*time.Millisecond)
	if d, ok := tr.Estimate("a"); !ok || d != 10*time.Millisecond {
		t.Fatalf("first observation should seed the EWMA, got %v %v", d, ok)
	}
	// The EWMA moves toward new observations without jumping.
	tr.Observe("a", 50*time.Millisecond)
	d, _ := tr.Estimate("a")
	if d <= 10*time.Millisecond || d >= 50*time.Millisecond {
		t.Fatalf("EWMA = %v, want strictly between 10ms and 50ms", d)
	}
	tr.Observe("a", -time.Second) // ignored
	if d2, _ := tr.Estimate("a"); d2 != d {
		t.Fatalf("negative observation must be ignored, %v -> %v", d, d2)
	}
	tr.Forget("a")
	if _, ok := tr.Estimate("a"); ok {
		t.Fatal("Forget must drop the estimate")
	}
}

func TestRankDemotesSlowPeer(t *testing.T) {
	tr := NewTracker()
	tr.Observe("slow", 120*time.Millisecond)
	tr.Observe("fast", 2*time.Millisecond)
	addrs := []transport.Addr{"slow", "unknown", "fast"}
	tr.Rank(addrs)
	if addrs[2] != "slow" {
		t.Fatalf("slow peer must rank last, got %v", addrs)
	}
	// unknown (bucket 0) before fast (bucket 2): optimism over evidence.
	if addrs[0] != "unknown" || addrs[1] != "fast" {
		t.Fatalf("order = %v, want [unknown fast slow]", addrs)
	}
}

// TestRankStableWithoutObservations: with nothing observed the input
// order is preserved byte for byte — the property that keeps the
// hash-rotated replica order (and its determinism tests) intact until
// real load signal exists.
func TestRankStableWithoutObservations(t *testing.T) {
	tr := NewTracker()
	addrs := []transport.Addr{"c", "a", "b"}
	tr.Rank(addrs)
	if addrs[0] != "c" || addrs[1] != "a" || addrs[2] != "b" {
		t.Fatalf("order changed without observations: %v", addrs)
	}
	// Sub-quantum differences also leave the order alone.
	tr.Observe("c", 100*time.Microsecond)
	tr.Observe("a", 900*time.Microsecond)
	tr.Rank(addrs)
	if addrs[0] != "c" || addrs[1] != "a" || addrs[2] != "b" {
		t.Fatalf("sub-millisecond jitter must not reorder: %v", addrs)
	}
}

func TestTrackerConcurrency(t *testing.T) {
	tr := NewTracker()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			addrs := []transport.Addr{"p0", "p1", "p2", "p3"}
			for i := 0; i < 500; i++ {
				tr.Observe(addrs[i%4], time.Duration(1+i%7)*time.Millisecond)
				local := append([]transport.Addr(nil), addrs...)
				tr.Rank(local)
				_, _ = tr.Estimate(addrs[(i+g)%4])
			}
		}(g)
	}
	wg.Wait()
	if tr.Len() != 4 {
		t.Fatalf("tracked peers = %d, want 4", tr.Len())
	}
}

func TestRankManyPeersDeterministic(t *testing.T) {
	tr := NewTracker()
	var addrs []transport.Addr
	for i := 0; i < 16; i++ {
		addrs = append(addrs, transport.Addr(fmt.Sprintf("p%02d", i)))
	}
	tr.Observe("p05", 80*time.Millisecond)
	tr.Observe("p11", 40*time.Millisecond)
	a := append([]transport.Addr(nil), addrs...)
	b := append([]transport.Addr(nil), addrs...)
	tr.Rank(a)
	tr.Rank(b)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("ranking not deterministic at %d: %v vs %v", i, a, b)
		}
	}
	if a[len(a)-1] != "p05" || a[len(a)-2] != "p11" {
		t.Fatalf("slowest peers must sink to the end: %v", a)
	}
}
