// Package loadstat tracks per-peer load observations — an EWMA of the
// round-trip latency each remote peer has recently shown — and ranks
// candidate peers by it. The global-index read path feeds it from every
// timed RPC and uses the ranking to steer replica reads away from slow
// or overloaded peers (the "load-aware replica reads" ROADMAP item);
// the hedged-read machinery consults the same ranking to pick the
// next-best replica to fire at.
package loadstat

import (
	"sort"
	"sync"
	"time"

	"repro/internal/transport"
)

// ewmaWeight is the weight of a new observation:
// estimate += (observed - estimate) / ewmaWeight.
const ewmaWeight = 4

// quantum is the bucket size estimates are quantized to when ranking.
// Peers whose estimates fall in the same bucket count as equally loaded,
// so ranking stays stable (and deterministic, given a stable input
// order) under microsecond-level jitter; only materially slower peers —
// milliseconds apart, the scale of queueing and of simulated overload —
// are demoted.
const quantum = time.Millisecond

// maxIdleSteps caps how many decay steps a single sweep applies to one
// peer, so an estimate untouched for days converges in one bounded hop
// instead of looping proportionally to wall-clock idle time.
const maxIdleSteps = 8

// Tracker is a concurrency-safe per-peer latency EWMA table.
type Tracker struct {
	mu         sync.Mutex
	ewma       map[transport.Addr]time.Duration
	lastObs    map[transport.Addr]time.Time
	idleWindow time.Duration    // 0 = idle decay disabled
	clock      func() time.Time // test seam; nil = time.Now
}

// NewTracker returns an empty tracker.
func NewTracker() *Tracker {
	return &Tracker{
		ewma:    make(map[transport.Addr]time.Duration),
		lastObs: make(map[transport.Addr]time.Time),
	}
}

// EnableIdleDecay makes estimates perishable: a peer not observed for a
// full window has its EWMA aged one step toward the fleet median per
// elapsed window. Without this, a peer that was slow once and then
// stopped being selected (precisely because it ranked last) keeps its
// stale demotion forever — the estimate can only be corrected by the
// traffic the estimate itself repels. A non-positive window disables
// decay again.
func (t *Tracker) EnableIdleDecay(window time.Duration) {
	t.mu.Lock()
	if window < 0 {
		window = 0
	}
	t.idleWindow = window
	t.mu.Unlock()
}

func (t *Tracker) nowLocked() time.Time {
	if t.clock != nil {
		return t.clock()
	}
	return time.Now()
}

// decayIdleLocked ages every idle peer's EWMA toward the fleet median.
// The median is computed from the pre-decay values so the result does
// not depend on map iteration order.
func (t *Tracker) decayIdleLocked() {
	if t.idleWindow <= 0 || len(t.ewma) < 2 {
		return
	}
	now := t.nowLocked()
	vals := make([]time.Duration, 0, len(t.ewma))
	for _, d := range t.ewma {
		vals = append(vals, d)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	median := vals[len(vals)/2]
	for a, d := range t.ewma {
		last, ok := t.lastObs[a]
		if !ok {
			t.lastObs[a] = now
			continue
		}
		steps := int(now.Sub(last) / t.idleWindow)
		if steps <= 0 {
			continue
		}
		if steps > maxIdleSteps {
			steps = maxIdleSteps
			// After a capped sweep the peer is treated as freshly aged;
			// otherwise the uncredited backlog would replay next call.
			t.lastObs[a] = now
		} else {
			t.lastObs[a] = last.Add(time.Duration(steps) * t.idleWindow)
		}
		for s := 0; s < steps; s++ {
			d += (median - d) / ewmaWeight
		}
		t.ewma[a] = d
	}
}

// Observe folds one measured round trip to addr into the peer's EWMA.
// Non-positive observations are ignored.
func (t *Tracker) Observe(addr transport.Addr, took time.Duration) {
	if took <= 0 {
		return
	}
	t.mu.Lock()
	old, seen := t.ewma[addr]
	if !seen {
		t.ewma[addr] = took
	} else {
		t.ewma[addr] = old + (took-old)/ewmaWeight
	}
	t.lastObs[addr] = t.nowLocked()
	t.mu.Unlock()
}

// Estimate returns the peer's current latency EWMA; ok is false for a
// peer never observed.
func (t *Tracker) Estimate(addr transport.Addr) (time.Duration, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.decayIdleLocked()
	d, ok := t.ewma[addr]
	return d, ok
}

// Forget drops a peer's state (e.g. after it was declared dead — a
// resurrected peer should not inherit its pre-failure estimate).
func (t *Tracker) Forget(addr transport.Addr) {
	t.mu.Lock()
	delete(t.ewma, addr)
	delete(t.lastObs, addr)
	t.mu.Unlock()
}

// Rank stable-sorts addrs in place from least to most loaded, comparing
// quantized estimates. Never-observed peers rank as bucket zero — the
// optimistic default: with no evidence against a peer it is tried (and
// thereby measured) before any peer already known to be slow. With no
// observations at all the input order is preserved, so callers keep
// whatever deterministic base order (hash rotation) they arrived with.
func (t *Tracker) Rank(addrs []transport.Addr) {
	if len(addrs) < 2 {
		return
	}
	buckets := make([]int64, len(addrs))
	t.mu.Lock()
	t.decayIdleLocked()
	for i, a := range addrs {
		buckets[i] = int64(t.ewma[a] / quantum) // absent => 0
	}
	t.mu.Unlock()
	// Indirect stable sort: bucket order, input order on ties.
	idx := make([]int, len(addrs))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(i, j int) bool { return buckets[idx[i]] < buckets[idx[j]] })
	out := make([]transport.Addr, len(addrs))
	for i, j := range idx {
		out[i] = addrs[j]
	}
	copy(addrs, out)
}

// Snapshot returns a copy of every tracked peer's current EWMA — the
// telemetry layer exports it as the per-peer latency gauge.
func (t *Tracker) Snapshot() map[transport.Addr]time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.decayIdleLocked()
	out := make(map[transport.Addr]time.Duration, len(t.ewma))
	for a, d := range t.ewma {
		out[a] = d
	}
	return out
}

// Len returns the number of peers currently tracked.
func (t *Tracker) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.ewma)
}
