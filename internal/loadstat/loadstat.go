// Package loadstat tracks per-peer load observations — an EWMA of the
// round-trip latency each remote peer has recently shown — and ranks
// candidate peers by it. The global-index read path feeds it from every
// timed RPC and uses the ranking to steer replica reads away from slow
// or overloaded peers (the "load-aware replica reads" ROADMAP item);
// the hedged-read machinery consults the same ranking to pick the
// next-best replica to fire at.
package loadstat

import (
	"sort"
	"sync"
	"time"

	"repro/internal/transport"
)

// ewmaWeight is the weight of a new observation:
// estimate += (observed - estimate) / ewmaWeight.
const ewmaWeight = 4

// quantum is the bucket size estimates are quantized to when ranking.
// Peers whose estimates fall in the same bucket count as equally loaded,
// so ranking stays stable (and deterministic, given a stable input
// order) under microsecond-level jitter; only materially slower peers —
// milliseconds apart, the scale of queueing and of simulated overload —
// are demoted.
const quantum = time.Millisecond

// Tracker is a concurrency-safe per-peer latency EWMA table.
type Tracker struct {
	mu   sync.Mutex
	ewma map[transport.Addr]time.Duration
}

// NewTracker returns an empty tracker.
func NewTracker() *Tracker {
	return &Tracker{ewma: make(map[transport.Addr]time.Duration)}
}

// Observe folds one measured round trip to addr into the peer's EWMA.
// Non-positive observations are ignored.
func (t *Tracker) Observe(addr transport.Addr, took time.Duration) {
	if took <= 0 {
		return
	}
	t.mu.Lock()
	old, seen := t.ewma[addr]
	if !seen {
		t.ewma[addr] = took
	} else {
		t.ewma[addr] = old + (took-old)/ewmaWeight
	}
	t.mu.Unlock()
}

// Estimate returns the peer's current latency EWMA; ok is false for a
// peer never observed.
func (t *Tracker) Estimate(addr transport.Addr) (time.Duration, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	d, ok := t.ewma[addr]
	return d, ok
}

// Forget drops a peer's state (e.g. after it was declared dead — a
// resurrected peer should not inherit its pre-failure estimate).
func (t *Tracker) Forget(addr transport.Addr) {
	t.mu.Lock()
	delete(t.ewma, addr)
	t.mu.Unlock()
}

// Rank stable-sorts addrs in place from least to most loaded, comparing
// quantized estimates. Never-observed peers rank as bucket zero — the
// optimistic default: with no evidence against a peer it is tried (and
// thereby measured) before any peer already known to be slow. With no
// observations at all the input order is preserved, so callers keep
// whatever deterministic base order (hash rotation) they arrived with.
func (t *Tracker) Rank(addrs []transport.Addr) {
	if len(addrs) < 2 {
		return
	}
	buckets := make([]int64, len(addrs))
	t.mu.Lock()
	for i, a := range addrs {
		buckets[i] = int64(t.ewma[a] / quantum) // absent => 0
	}
	t.mu.Unlock()
	// Indirect stable sort: bucket order, input order on ties.
	idx := make([]int, len(addrs))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(i, j int) bool { return buckets[idx[i]] < buckets[idx[j]] })
	out := make([]transport.Addr, len(addrs))
	for i, j := range idx {
		out[i] = addrs[j]
	}
	copy(addrs, out)
}

// Snapshot returns a copy of every tracked peer's current EWMA — the
// telemetry layer exports it as the per-peer latency gauge.
func (t *Tracker) Snapshot() map[transport.Addr]time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[transport.Addr]time.Duration, len(t.ewma))
	for a, d := range t.ewma {
		out[a] = d
	}
	return out
}

// Len returns the number of peers currently tracked.
func (t *Tracker) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.ewma)
}
