package loadstat

import (
	"math"
	"sort"
	"sync"
	"time"
)

// KeyRate tracks per-key read popularity as an exponentially-decayed
// counter: each Observe adds 1, and the accumulated count halves every
// half-life. The score is therefore "reads in the last few half-lives",
// which is the read-EWMA signal the hot-key promoter thresholds on —
// keys whose score crosses HotKeyThreshold get soft replicas, and the
// score falls back below the threshold by itself once the key cools.
//
// The table is bounded: inserting beyond maxKeys evicts the coldest
// tracked key, so a zipfian tail of one-off keys cannot grow the map.
type KeyRate struct {
	mu      sync.Mutex
	half    time.Duration
	maxKeys int
	keys    map[string]*keyRateEntry
	clock   func() time.Time // test seam; nil = time.Now
}

type keyRateEntry struct {
	count float64
	last  time.Time
}

// DefaultKeyRateHalfLife is the decay half-life used when the caller
// passes a non-positive one.
const DefaultKeyRateHalfLife = 10 * time.Second

// NewKeyRate returns a bounded decayed-count tracker. maxKeys <= 0
// selects a default bound of 4096 keys.
func NewKeyRate(halfLife time.Duration, maxKeys int) *KeyRate {
	if halfLife <= 0 {
		halfLife = DefaultKeyRateHalfLife
	}
	if maxKeys <= 0 {
		maxKeys = 4096
	}
	return &KeyRate{half: halfLife, maxKeys: maxKeys, keys: make(map[string]*keyRateEntry)}
}

func (r *KeyRate) now() time.Time {
	if r.clock != nil {
		return r.clock()
	}
	return time.Now()
}

// decayedLocked returns e's count decayed to now without mutating it.
func (r *KeyRate) decayedLocked(e *keyRateEntry, now time.Time) float64 {
	dt := now.Sub(e.last)
	if dt <= 0 {
		return e.count
	}
	return e.count * math.Exp2(-float64(dt)/float64(r.half))
}

// Observe records one read of key.
func (r *KeyRate) Observe(key string) {
	now := r.now()
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.keys[key]; ok {
		e.count = r.decayedLocked(e, now) + 1
		e.last = now
		return
	}
	if len(r.keys) >= r.maxKeys {
		r.evictColdestLocked(now)
	}
	r.keys[key] = &keyRateEntry{count: 1, last: now}
}

// evictColdestLocked drops the key with the smallest decayed count;
// ties break on key order so eviction is deterministic.
func (r *KeyRate) evictColdestLocked(now time.Time) {
	victim := ""
	best := math.Inf(1)
	for k, e := range r.keys {
		c := r.decayedLocked(e, now)
		if c < best || (c == best && (victim == "" || k < victim)) {
			best, victim = c, k
		}
	}
	if victim != "" {
		delete(r.keys, victim)
	}
}

// Score returns key's decayed read count (0 for an untracked key).
func (r *KeyRate) Score(key string) float64 {
	now := r.now()
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.keys[key]
	if !ok {
		return 0
	}
	return r.decayedLocked(e, now)
}

// Hot returns every key whose decayed count is at least threshold,
// hottest first (key order on ties, so the result is deterministic).
func (r *KeyRate) Hot(threshold float64) []string {
	now := r.now()
	r.mu.Lock()
	type scored struct {
		key   string
		count float64
	}
	hot := make([]scored, 0)
	for k, e := range r.keys {
		if c := r.decayedLocked(e, now); c >= threshold {
			hot = append(hot, scored{k, c})
		}
	}
	r.mu.Unlock()
	sort.Slice(hot, func(i, j int) bool {
		if hot[i].count != hot[j].count {
			return hot[i].count > hot[j].count
		}
		return hot[i].key < hot[j].key
	})
	out := make([]string, len(hot))
	for i, s := range hot {
		out[i] = s.key
	}
	return out
}

// Len returns the number of keys currently tracked.
func (r *KeyRate) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.keys)
}
