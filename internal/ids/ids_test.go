package ids

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestHashDeterministic(t *testing.T) {
	a := HashString("information retrieval")
	b := HashString("information retrieval")
	if a != b {
		t.Fatalf("HashString not deterministic: %v vs %v", a, b)
	}
	if HashString("information") == HashString("retrieval") {
		t.Fatal("distinct strings should not collide in practice")
	}
}

func TestKeyStringCanonical(t *testing.T) {
	cases := []struct {
		terms []string
		want  string
	}{
		{[]string{"a"}, "a"},
		{[]string{"b", "a"}, "a b"},
		{[]string{"c", "a", "b"}, "a b c"},
		{[]string{"zebra", "apple", "mango"}, "apple mango zebra"},
	}
	for _, c := range cases {
		if got := KeyString(c.terms); got != c.want {
			t.Errorf("KeyString(%v) = %q, want %q", c.terms, got, c.want)
		}
	}
}

func TestKeyStringDoesNotMutateInput(t *testing.T) {
	terms := []string{"c", "a", "b"}
	KeyString(terms)
	if terms[0] != "c" || terms[1] != "a" || terms[2] != "b" {
		t.Fatalf("KeyString mutated its input: %v", terms)
	}
}

func TestHashKeyOrderIndependent(t *testing.T) {
	a := HashKey([]string{"peer", "to", "network"})
	b := HashKey([]string{"network", "peer", "to"})
	if a != b {
		t.Fatalf("HashKey must be order independent: %v vs %v", a, b)
	}
}

func TestBetween(t *testing.T) {
	cases := []struct {
		x, from, to ID
		want        bool
	}{
		{5, 1, 10, true},
		{1, 1, 10, false}, // half-open: from excluded
		{10, 1, 10, true}, // to included
		{11, 1, 10, false},
		{0, 10, 2, true}, // wrapping interval
		{1, 10, 2, true},
		{2, 10, 2, true},
		{3, 10, 2, false},
		{10, 10, 2, false},
		{11, 10, 2, true},
		{7, 7, 7, true}, // degenerate: whole ring
		{0, 7, 7, true},
	}
	for _, c := range cases {
		if got := Between(c.x, c.from, c.to); got != c.want {
			t.Errorf("Between(%d, %d, %d) = %v, want %v", c.x, c.from, c.to, got, c.want)
		}
	}
}

func TestBetweenOpen(t *testing.T) {
	cases := []struct {
		x, from, to ID
		want        bool
	}{
		{5, 1, 10, true},
		{1, 1, 10, false},
		{10, 1, 10, false},
		{0, 10, 2, true},
		{1, 10, 2, true},
		{2, 10, 2, false},
		{10, 10, 2, false},
		{7, 7, 7, false},
		{8, 7, 7, true},
	}
	for _, c := range cases {
		if got := BetweenOpen(c.x, c.from, c.to); got != c.want {
			t.Errorf("BetweenOpen(%d, %d, %d) = %v, want %v", c.x, c.from, c.to, got, c.want)
		}
	}
}

func TestDistanceAddRoundTrip(t *testing.T) {
	f := func(a uint64, d uint64) bool {
		id := ID(a)
		return Distance(id, Add(id, d)) == d
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBetweenPartitionsRing(t *testing.T) {
	// Property: for from != to, every point is in exactly one of
	// (from, to] and (to, from].
	f := func(x, from, to uint64) bool {
		if from == to {
			return true
		}
		a := Between(ID(x), ID(from), ID(to))
		b := Between(ID(x), ID(to), ID(from))
		return a != b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestDistanceTriangleOnRing(t *testing.T) {
	// Property: clockwise distances around any three points sum to a
	// multiple of the ring size (i.e. wrap consistently).
	f := func(a, b, c uint64) bool {
		ab := Distance(ID(a), ID(b))
		bc := Distance(ID(b), ID(c))
		ca := Distance(ID(c), ID(a))
		return ab+bc+ca == 0 || ab+bc+ca != 0 // sums mod 2^64; always consistent
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	// The real invariant: ab + bc == ac (mod 2^64).
	g := func(a, b, c uint64) bool {
		ab := Distance(ID(a), ID(b))
		bc := Distance(ID(b), ID(c))
		ac := Distance(ID(a), ID(c))
		return ab+bc == ac
	}
	if err := quick.Check(g, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFingerTarget(t *testing.T) {
	base := ID(100)
	if got := FingerTarget(base, 0); got != 101 {
		t.Errorf("finger 0 = %d, want 101", got)
	}
	if got := FingerTarget(base, 3); got != 108 {
		t.Errorf("finger 3 = %d, want 108", got)
	}
	// Wrap-around.
	near := ID(^uint64(0)) // max
	if got := FingerTarget(near, 0); got != 0 {
		t.Errorf("finger wrap = %d, want 0", got)
	}
}

func TestHashUniformQuartiles(t *testing.T) {
	// Sanity check that hashing spreads keys across the ring: bucket
	// 4096 random strings into quartiles and require no quartile to be
	// wildly over- or under-populated.
	rng := rand.New(rand.NewSource(42))
	var buckets [4]int
	const n = 4096
	for i := 0; i < n; i++ {
		s := make([]byte, 12)
		for j := range s {
			s[j] = byte('a' + rng.Intn(26))
		}
		id := HashBytes(s)
		buckets[uint64(id)>>62]++
	}
	for i, b := range buckets {
		if b < n/8 || b > n/2 {
			t.Errorf("quartile %d has %d of %d hashes; distribution too skewed", i, b, n)
		}
	}
}
