// Package ids defines the identifier space shared by the AlvisP2P DHT and
// the distributed index: a 64-bit ring on which both peers and index keys
// are placed. It provides hashing of textual keys into the ring and the
// modular interval arithmetic that routing and responsibility tests need.
package ids

import (
	"crypto/sha1"
	"encoding/binary"
	"fmt"
	"sort"
	"strings"
)

// ID is a position on the identifier ring [0, 2^64).
type ID uint64

// String renders the ID as fixed-width hexadecimal so that IDs sort
// textually in ring order.
func (id ID) String() string { return fmt.Sprintf("%016x", uint64(id)) }

// HashBytes maps arbitrary bytes onto the ring using the first eight bytes
// of their SHA-1 digest. SHA-1 keeps parity with the original system's
// hashing (P-Grid/Chord-era DHTs) and gives a uniform distribution; the
// truncation to 64 bits is the ring width, not a security boundary.
func HashBytes(b []byte) ID {
	sum := sha1.Sum(b)
	return ID(binary.BigEndian.Uint64(sum[:8]))
}

// HashString maps a string onto the ring. It is the canonical way to place
// an index key: the caller must pass the key's canonical form (see
// KeyString).
func HashString(s string) ID { return HashBytes([]byte(s)) }

// KeyString returns the canonical textual form of a term combination:
// terms sorted lexicographically and joined with a single space. Hashing
// the canonical form guarantees that {a,b} and {b,a} map to the same peer.
func KeyString(terms []string) string {
	if len(terms) == 1 {
		return terms[0]
	}
	sorted := make([]string, len(terms))
	copy(sorted, terms)
	sort.Strings(sorted)
	return strings.Join(sorted, " ")
}

// HashKey hashes a term combination in canonical form.
func HashKey(terms []string) ID { return HashString(KeyString(terms)) }

// Between reports whether x lies in the half-open ring interval (from, to].
// This is the Chord successor-responsibility test: the peer with ID `to`
// whose predecessor has ID `from` is responsible for every x in (from, to].
// When from == to the interval covers the whole ring (single-peer case).
func Between(x, from, to ID) bool {
	if from == to {
		return true
	}
	if from < to {
		return from < x && x <= to
	}
	// Interval wraps around zero.
	return x > from || x <= to
}

// BetweenOpen reports whether x lies strictly inside the open ring
// interval (from, to). Used by finger-table maintenance where neither
// endpoint qualifies.
func BetweenOpen(x, from, to ID) bool {
	if from == to {
		return x != from
	}
	if from < to {
		return from < x && x < to
	}
	return x > from || x < to
}

// Distance returns the clockwise distance from a to b on the ring, i.e.
// the number of positions a pointer must advance from a to reach b.
func Distance(a, b ID) uint64 {
	return uint64(b - a) // wrap-around is exactly two's-complement subtraction
}

// Add advances an ID clockwise by d positions, wrapping around the ring.
func Add(a ID, d uint64) ID { return a + ID(d) }

// FingerTarget returns the classic Chord finger target for index i:
// a + 2^i positions clockwise. i must be in [0, 64).
func FingerTarget(a ID, i uint) ID {
	return a + ID(uint64(1)<<i)
}
