package wire

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRoundTripScalars(t *testing.T) {
	w := NewWriter(64)
	w.Uvarint(0)
	w.Uvarint(300)
	w.Varint(-7)
	w.Uint64(0xdeadbeefcafef00d)
	w.Uint32(0x01020304)
	w.Byte(0x7f)
	w.Bool(true)
	w.Bool(false)
	w.Float64(3.25)
	w.String("hello wire")
	w.Bytes2([]byte{1, 2, 3})
	w.StringSlice([]string{"a", "bb", ""})

	r := NewReader(w.Bytes())
	if got := r.Uvarint(); got != 0 {
		t.Errorf("uvarint0 = %d", got)
	}
	if got := r.Uvarint(); got != 300 {
		t.Errorf("uvarint300 = %d", got)
	}
	if got := r.Varint(); got != -7 {
		t.Errorf("varint = %d", got)
	}
	if got := r.Uint64(); got != 0xdeadbeefcafef00d {
		t.Errorf("uint64 = %x", got)
	}
	if got := r.Uint32(); got != 0x01020304 {
		t.Errorf("uint32 = %x", got)
	}
	if got := r.Byte(); got != 0x7f {
		t.Errorf("byte = %x", got)
	}
	if got := r.Bool(); got != true {
		t.Errorf("bool = %v", got)
	}
	if got := r.Bool(); got != false {
		t.Errorf("bool = %v", got)
	}
	if got := r.Float64(); got != 3.25 {
		t.Errorf("float = %v", got)
	}
	if got := r.String(); got != "hello wire" {
		t.Errorf("string = %q", got)
	}
	b := r.Bytes()
	if len(b) != 3 || b[0] != 1 || b[2] != 3 {
		t.Errorf("bytes = %v", b)
	}
	ss := r.StringSlice()
	if len(ss) != 3 || ss[0] != "a" || ss[1] != "bb" || ss[2] != "" {
		t.Errorf("stringslice = %v", ss)
	}
	if r.Err() != nil {
		t.Fatalf("unexpected error: %v", r.Err())
	}
	if r.Remaining() != 0 {
		t.Fatalf("remaining = %d, want 0", r.Remaining())
	}
}

func TestTruncatedInputs(t *testing.T) {
	w := NewWriter(32)
	w.String("a longer string that we will truncate")
	full := w.Bytes()
	for i := 0; i < len(full); i++ {
		r := NewReader(full[:i])
		_ = r.String()
		if r.Err() == nil {
			t.Fatalf("reading %d/%d bytes should fail", i, len(full))
		}
	}
}

func TestHugeLengthPrefixRejected(t *testing.T) {
	w := NewWriter(16)
	w.Uvarint(uint64(MaxStringLen) + 1)
	r := NewReader(w.Bytes())
	if s := r.String(); s != "" || r.Err() == nil {
		t.Fatal("oversized length prefix must be rejected")
	}

	w.Reset()
	w.Uvarint(uint64(MaxStringLen) + 1)
	r = NewReader(w.Bytes())
	if b := r.Bytes(); b != nil || r.Err() == nil {
		t.Fatal("oversized bytes prefix must be rejected")
	}

	w.Reset()
	w.Uvarint(uint64(MaxStringLen) + 1)
	r = NewReader(w.Bytes())
	if ss := r.StringSlice(); ss != nil || r.Err() == nil {
		t.Fatal("oversized slice count must be rejected")
	}
}

func TestErrorSticky(t *testing.T) {
	r := NewReader(nil)
	_ = r.Uint64() // fails
	if r.Err() == nil {
		t.Fatal("expected error")
	}
	// All subsequent reads return zero values without panicking.
	if r.Uvarint() != 0 || r.Varint() != 0 || r.Byte() != 0 || r.Bool() ||
		r.String() != "" || r.Float64() != 0 || r.Uint32() != 0 {
		t.Fatal("sticky error reader must return zero values")
	}
}

func TestBytesReturnsCopy(t *testing.T) {
	w := NewWriter(8)
	w.Bytes2([]byte{9, 9, 9})
	buf := w.Bytes()
	r := NewReader(buf)
	b := r.Bytes()
	b[0] = 1
	r2 := NewReader(buf)
	if got := r2.Bytes(); got[0] != 9 {
		t.Fatal("Bytes must return a copy, not alias the input")
	}
}

func TestQuickRoundTripUvarint(t *testing.T) {
	f := func(v uint64) bool {
		w := NewWriter(12)
		w.Uvarint(v)
		if w.Len() != UvarintSize(v) {
			return false
		}
		r := NewReader(w.Bytes())
		return r.Uvarint() == v && r.Err() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickRoundTripVarint(t *testing.T) {
	f := func(v int64) bool {
		w := NewWriter(12)
		w.Varint(v)
		r := NewReader(w.Bytes())
		return r.Varint() == v && r.Err() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickRoundTripString(t *testing.T) {
	f := func(s string) bool {
		w := NewWriter(len(s) + 8)
		w.String(s)
		r := NewReader(w.Bytes())
		return r.String() == s && r.Err() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickRoundTripFloat(t *testing.T) {
	f := func(v float64) bool {
		w := NewWriter(8)
		w.Float64(v)
		r := NewReader(w.Bytes())
		got := r.Float64()
		if math.IsNaN(v) {
			return math.IsNaN(got)
		}
		return got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWriterReset(t *testing.T) {
	w := NewWriter(8)
	w.String("abc")
	w.Reset()
	if w.Len() != 0 {
		t.Fatal("reset should clear length")
	}
	w.String("d")
	r := NewReader(w.Bytes())
	if r.String() != "d" {
		t.Fatal("writer unusable after reset")
	}
}
