// Package wire implements the AlvisP2P binary wire format. One encoding is
// shared by the TCP transport (frame payloads) and by the simulator's
// bandwidth meters, so every byte count an experiment reports is the size
// the message would occupy on a real network.
//
// The format is deliberately simple: unsigned varints (as in
// encoding/binary), length-prefixed byte strings, and fixed-width 64-bit
// values for ring IDs and scores. Writers never fail; readers validate
// lengths and return ErrCorrupt on malformed input rather than panicking,
// because frames arrive from the network.
package wire

import (
	"encoding/binary"
	"errors"
	"math"
)

// ErrCorrupt is returned by Reader methods when the input is truncated or
// contains an out-of-range length prefix.
var ErrCorrupt = errors.New("wire: corrupt message")

// MaxStringLen bounds any length prefix a reader will accept, protecting
// peers from hostile frames that declare multi-gigabyte strings.
const MaxStringLen = 1 << 26 // 64 MiB

// Writer accumulates an encoded message. The zero value is ready to use.
type Writer struct {
	buf []byte
}

// NewWriter returns a Writer with capacity preallocated for messages of
// roughly n bytes.
func NewWriter(n int) *Writer { return &Writer{buf: make([]byte, 0, n)} }

// Bytes returns the encoded message. The slice aliases the writer's
// internal buffer and is valid until the next write.
func (w *Writer) Bytes() []byte { return w.buf }

// Len returns the number of bytes encoded so far.
func (w *Writer) Len() int { return len(w.buf) }

// Reset clears the writer for reuse, retaining the allocated buffer.
func (w *Writer) Reset() { w.buf = w.buf[:0] }

// Uvarint appends an unsigned varint.
func (w *Writer) Uvarint(v uint64) {
	w.buf = binary.AppendUvarint(w.buf, v)
}

// Varint appends a signed varint (zig-zag encoded by encoding/binary).
func (w *Writer) Varint(v int64) {
	w.buf = binary.AppendVarint(w.buf, v)
}

// Uint64 appends a fixed-width big-endian 64-bit value. Ring IDs use this
// so that encoded size is independent of position on the ring.
func (w *Writer) Uint64(v uint64) {
	w.buf = binary.BigEndian.AppendUint64(w.buf, v)
}

// Uint32 appends a fixed-width big-endian 32-bit value.
func (w *Writer) Uint32(v uint32) {
	w.buf = binary.BigEndian.AppendUint32(w.buf, v)
}

// Byte appends a single byte.
func (w *Writer) Byte(b byte) { w.buf = append(w.buf, b) }

// Bool appends a boolean as one byte.
func (w *Writer) Bool(b bool) {
	if b {
		w.buf = append(w.buf, 1)
	} else {
		w.buf = append(w.buf, 0)
	}
}

// Float64 appends an IEEE-754 double. Scores in posting lists use this.
func (w *Writer) Float64(f float64) {
	w.Uint64(math.Float64bits(f))
}

// String appends a length-prefixed UTF-8 string.
func (w *Writer) String(s string) {
	w.Uvarint(uint64(len(s)))
	w.buf = append(w.buf, s...)
}

// Bytes2 appends a length-prefixed byte slice. (Named to avoid clashing
// with the Bytes accessor.)
func (w *Writer) Bytes2(b []byte) {
	w.Uvarint(uint64(len(b)))
	w.buf = append(w.buf, b...)
}

// StringSlice appends a count-prefixed sequence of strings.
func (w *Writer) StringSlice(ss []string) {
	w.Uvarint(uint64(len(ss)))
	for _, s := range ss {
		w.String(s)
	}
}

// Reader decodes a message produced by Writer. It is a value type; copy it
// to checkpoint a position.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader returns a Reader over b. The reader does not copy b.
func NewReader(b []byte) *Reader { return &Reader{buf: b} }

// Err returns the first decoding error encountered, or nil.
func (r *Reader) Err() error { return r.err }

// Remaining returns the number of unconsumed bytes.
func (r *Reader) Remaining() int { return len(r.buf) - r.off }

func (r *Reader) fail() {
	if r.err == nil {
		r.err = ErrCorrupt
	}
}

// Uvarint reads an unsigned varint. On error it returns 0 and records
// ErrCorrupt; subsequent reads return zero values.
func (r *Reader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		r.fail()
		return 0
	}
	r.off += n
	return v
}

// Varint reads a signed varint.
func (r *Reader) Varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.buf[r.off:])
	if n <= 0 {
		r.fail()
		return 0
	}
	r.off += n
	return v
}

// Uint64 reads a fixed-width 64-bit value.
func (r *Reader) Uint64() uint64 {
	if r.err != nil || r.off+8 > len(r.buf) {
		r.fail()
		return 0
	}
	v := binary.BigEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v
}

// Uint32 reads a fixed-width 32-bit value.
func (r *Reader) Uint32() uint32 {
	if r.err != nil || r.off+4 > len(r.buf) {
		r.fail()
		return 0
	}
	v := binary.BigEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v
}

// Byte reads a single byte.
func (r *Reader) Byte() byte {
	if r.err != nil || r.off >= len(r.buf) {
		r.fail()
		return 0
	}
	b := r.buf[r.off]
	r.off++
	return b
}

// Bool reads a boolean encoded as one byte.
func (r *Reader) Bool() bool { return r.Byte() != 0 }

// Float64 reads an IEEE-754 double.
func (r *Reader) Float64() float64 { return math.Float64frombits(r.Uint64()) }

// String reads a length-prefixed string.
func (r *Reader) String() string {
	n := r.Uvarint()
	if r.err != nil {
		return ""
	}
	if n > MaxStringLen || r.off+int(n) > len(r.buf) {
		r.fail()
		return ""
	}
	s := string(r.buf[r.off : r.off+int(n)])
	r.off += int(n)
	return s
}

// Bytes reads a length-prefixed byte slice. The result is a copy and does
// not alias the reader's buffer.
func (r *Reader) Bytes() []byte {
	n := r.Uvarint()
	if r.err != nil {
		return nil
	}
	if n > MaxStringLen || r.off+int(n) > len(r.buf) {
		r.fail()
		return nil
	}
	b := make([]byte, n)
	copy(b, r.buf[r.off:r.off+int(n)])
	r.off += int(n)
	return b
}

// StringSlice reads a count-prefixed sequence of strings.
func (r *Reader) StringSlice() []string {
	n := r.Uvarint()
	if r.err != nil {
		return nil
	}
	if n > MaxStringLen {
		r.fail()
		return nil
	}
	// Cap the initial allocation: a hostile count prefix must not let a
	// single frame reserve gigabytes before the element reads fail.
	capHint := n
	if capHint > 4096 {
		capHint = 4096
	}
	ss := make([]string, 0, capHint)
	for i := uint64(0); i < n; i++ {
		ss = append(ss, r.String())
		if r.err != nil {
			return nil
		}
	}
	return ss
}

// MaxDeadlineBudgetMillis bounds the deadline budget a frame may
// announce: about 49 days, far beyond any realistic per-request
// deadline. A larger value is treated as corrupt rather than silently
// creating a context that never expires.
const MaxDeadlineBudgetMillis = uint64(1) << 32

// AppendDeadlineBudget appends a frame's deadline-budget field — the
// caller's *remaining* time in milliseconds, as an unsigned varint — to
// dst. Shipping a relative budget instead of an absolute deadline keeps
// the field clock-skew-free: the receiver restarts the clock on receipt,
// granting the request at most the time the sender had left at send.
func AppendDeadlineBudget(dst []byte, ms uint64) []byte {
	return binary.AppendUvarint(dst, ms)
}

// ConsumeDeadlineBudget splits a deadline-budget field off the front of
// b, returning the budget in milliseconds and the remaining bytes.
// Frames that do not announce the field never reach this function (the
// transport keys it off a header flag), which is what keeps pre-budget
// peers decodable: their payloads are returned untouched elsewhere.
func ConsumeDeadlineBudget(b []byte) (ms uint64, rest []byte, err error) {
	v, n := binary.Uvarint(b)
	if n <= 0 || v > MaxDeadlineBudgetMillis {
		return 0, nil, ErrCorrupt
	}
	return v, b[n:], nil
}

// UvarintSize returns the encoded size in bytes of v as an unsigned
// varint, without encoding it. Used by size estimators.
func UvarintSize(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}
