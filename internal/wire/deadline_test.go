package wire

import (
	"errors"
	"testing"
)

// TestDeadlineBudgetRoundTrip pins the wire form of the frame header's
// optional deadline field: a varint of relative milliseconds prefixed to
// the payload, recovered exactly on the other side.
func TestDeadlineBudgetRoundTrip(t *testing.T) {
	payload := []byte("frame payload")
	for _, ms := range []uint64{0, 1, 42, 999, 1 << 20, MaxDeadlineBudgetMillis} {
		b := AppendDeadlineBudget(nil, ms)
		b = append(b, payload...)
		got, rest, err := ConsumeDeadlineBudget(b)
		if err != nil {
			t.Fatalf("budget %d: %v", ms, err)
		}
		if got != ms {
			t.Errorf("budget %d round-tripped as %d", ms, got)
		}
		if string(rest) != string(payload) {
			t.Errorf("budget %d: rest = %q, want %q", ms, rest, payload)
		}
	}
}

// TestDeadlineBudgetAbsentFieldBackCompat: a frame from a peer that
// predates the deadline field carries no budget prefix, and its payload
// must decode byte-for-byte as before. The transport signals presence
// with a header flag, so "absent" means the payload is simply not run
// through ConsumeDeadlineBudget — this test pins that a PR 3 style
// payload is not accidentally eaten by the budget decoder when the flag
// machinery is honoured.
func TestDeadlineBudgetAbsentFieldBackCompat(t *testing.T) {
	// A typical old-format body: a length-prefixed key plus a uvarint.
	w := NewWriter(16)
	w.String("old frame")
	w.Uvarint(7)
	body := append([]byte(nil), w.Bytes()...)

	// Without the flag, the body is handed to the application untouched.
	r := NewReader(body)
	if got := r.String(); got != "old frame" {
		t.Fatalf("key = %q", got)
	}
	if got := r.Uvarint(); got != 7 {
		t.Fatalf("uvarint = %d", got)
	}
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}

	// With the flag, the same body gains exactly one budget prefix and
	// the remainder is byte-identical to the old body.
	framed := AppendDeadlineBudget(nil, 250)
	framed = append(framed, body...)
	ms, rest, err := ConsumeDeadlineBudget(framed)
	if err != nil || ms != 250 {
		t.Fatalf("budget = %d, %v", ms, err)
	}
	if string(rest) != string(body) {
		t.Fatalf("payload after budget differs from original body")
	}
}

// TestDeadlineBudgetCorrupt: truncated or absurd budgets are rejected as
// corrupt instead of creating bogus server deadlines.
func TestDeadlineBudgetCorrupt(t *testing.T) {
	if _, _, err := ConsumeDeadlineBudget(nil); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("empty input: err = %v, want ErrCorrupt", err)
	}
	// An unterminated varint (all continuation bits).
	if _, _, err := ConsumeDeadlineBudget([]byte{0x80, 0x80}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("truncated varint: err = %v, want ErrCorrupt", err)
	}
	huge := AppendDeadlineBudget(nil, MaxDeadlineBudgetMillis+1)
	if _, _, err := ConsumeDeadlineBudget(huge); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("oversized budget: err = %v, want ErrCorrupt", err)
	}
}
