package wire

import (
	"math/rand"
	"testing"
)

// TestDecodeRandomBytesNeverPanics feeds the reader random garbage and
// exercises every accessor: frames arrive from the network, so corrupt
// input must fail cleanly, never panic or allocate absurdly.
func TestDecodeRandomBytesNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 2000; trial++ {
		buf := make([]byte, rng.Intn(64))
		rng.Read(buf)
		r := NewReader(buf)
		for i := 0; i < 8; i++ {
			switch rng.Intn(8) {
			case 0:
				r.Uvarint()
			case 1:
				r.Varint()
			case 2:
				r.Uint64()
			case 3:
				r.Uint32()
			case 4:
				r.Byte()
			case 5:
				_ = r.String()
			case 6:
				_ = r.Bytes()
			case 7:
				_ = r.StringSlice()
			}
		}
		// Whatever happened, the reader is in a consistent state.
		if r.Remaining() < 0 || r.Remaining() > len(buf) {
			t.Fatalf("trial %d: remaining %d out of range", trial, r.Remaining())
		}
	}
}

// TestInterleavedWriteRead round-trips random operation sequences.
func TestInterleavedWriteRead(t *testing.T) {
	rng := rand.New(rand.NewSource(100))
	for trial := 0; trial < 500; trial++ {
		type op struct {
			kind int
			u    uint64
			i    int64
			s    string
			b    bool
			f    float64
		}
		n := 1 + rng.Intn(12)
		ops := make([]op, n)
		w := NewWriter(64)
		for i := range ops {
			o := op{kind: rng.Intn(5)}
			switch o.kind {
			case 0:
				o.u = rng.Uint64()
				w.Uvarint(o.u)
			case 1:
				o.i = rng.Int63() - rng.Int63()
				w.Varint(o.i)
			case 2:
				letters := make([]byte, rng.Intn(10))
				for j := range letters {
					letters[j] = byte('a' + rng.Intn(26))
				}
				o.s = string(letters)
				w.String(o.s)
			case 3:
				o.b = rng.Intn(2) == 0
				w.Bool(o.b)
			case 4:
				o.f = rng.NormFloat64()
				w.Float64(o.f)
			}
			ops[i] = o
		}
		r := NewReader(w.Bytes())
		for i, o := range ops {
			switch o.kind {
			case 0:
				if got := r.Uvarint(); got != o.u {
					t.Fatalf("trial %d op %d: uvarint %d != %d", trial, i, got, o.u)
				}
			case 1:
				if got := r.Varint(); got != o.i {
					t.Fatalf("trial %d op %d: varint %d != %d", trial, i, got, o.i)
				}
			case 2:
				if got := r.String(); got != o.s {
					t.Fatalf("trial %d op %d: string %q != %q", trial, i, got, o.s)
				}
			case 3:
				if got := r.Bool(); got != o.b {
					t.Fatalf("trial %d op %d: bool %v != %v", trial, i, got, o.b)
				}
			case 4:
				if got := r.Float64(); got != o.f {
					t.Fatalf("trial %d op %d: float %v != %v", trial, i, got, o.f)
				}
			}
		}
		if r.Err() != nil || r.Remaining() != 0 {
			t.Fatalf("trial %d: err=%v remaining=%d", trial, r.Err(), r.Remaining())
		}
	}
}
