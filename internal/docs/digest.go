package docs

import (
	"encoding/xml"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/textproc"
)

// Digest is the Alvis document digest (paper §4 "Heterogeneity support"):
// an explicit XML representation of the index of a document collection —
// for each document its URL and the list of indexing terms with their
// positions. A sophisticated external engine (the paper's example is a
// digital library) converts its own index into this format and submits it
// to its peer, which then re-generates a local index and starts
// distributed indexing.
type Digest struct {
	XMLName   xml.Name    `xml:"alvis-digest"`
	Documents []DigestDoc `xml:"document"`
}

// DigestDoc is one document's slice of a digest.
type DigestDoc struct {
	URL   string       `xml:"url,attr"`
	Title string       `xml:"title,attr"`
	Terms []DigestTerm `xml:"term"`
}

// DigestTerm is one indexing term with its positions in the document
// (token positions, space-separated in the XML attribute).
type DigestTerm struct {
	Name      string `xml:"name,attr"`
	Positions string `xml:"positions,attr"`
}

// PositionList parses the space-separated positions attribute.
func (t DigestTerm) PositionList() ([]int, error) {
	fields := strings.Fields(t.Positions)
	out := make([]int, 0, len(fields))
	for _, f := range fields {
		v, err := strconv.Atoi(f)
		if err != nil {
			return nil, fmt.Errorf("docs: bad position %q for term %q: %w", f, t.Name, err)
		}
		if v < 0 {
			return nil, fmt.Errorf("docs: negative position for term %q", t.Name)
		}
		out = append(out, v)
	}
	return out, nil
}

// BuildDigest analyzes documents with the given analyzer and produces
// their digest, the exact artifact a peer would transmit on behalf of a
// local engine.
func BuildDigest(documents []*Document, a *textproc.Analyzer) *Digest {
	dg := &Digest{}
	for _, d := range documents {
		dd := DigestDoc{URL: d.URL, Title: d.Title}
		if dd.URL == "" {
			dd.URL = d.Name
		}
		positions := make(map[string][]int)
		var order []string
		for _, tok := range a.Tokens(d.Body) {
			if _, seen := positions[tok.Term]; !seen {
				order = append(order, tok.Term)
			}
			positions[tok.Term] = append(positions[tok.Term], tok.Pos)
		}
		for _, term := range order {
			var b strings.Builder
			for i, p := range positions[term] {
				if i > 0 {
					b.WriteByte(' ')
				}
				b.WriteString(strconv.Itoa(p))
			}
			dd.Terms = append(dd.Terms, DigestTerm{Name: term, Positions: b.String()})
		}
		dg.Documents = append(dg.Documents, dd)
	}
	return dg
}

// WriteDigest serializes a digest as XML.
func WriteDigest(w io.Writer, d *Digest) error {
	if _, err := io.WriteString(w, xml.Header); err != nil {
		return err
	}
	enc := xml.NewEncoder(w)
	enc.Indent("", "  ")
	if err := enc.Encode(d); err != nil {
		return fmt.Errorf("docs: encode digest: %w", err)
	}
	_, err := io.WriteString(w, "\n")
	return err
}

// ReadDigest parses a digest from XML.
func ReadDigest(r io.Reader) (*Digest, error) {
	var d Digest
	dec := xml.NewDecoder(r)
	if err := dec.Decode(&d); err != nil {
		return nil, fmt.Errorf("docs: decode digest: %w", err)
	}
	return &d, nil
}

// DigestToDocuments reconstructs indexable documents from a digest. The
// body is synthesized by placing each term at its recorded positions, so
// re-analyzing the synthesized body reproduces the original term/position
// index (stopwords and unknown gaps become padding tokens that the
// analyzer drops again). This is how a peer "re-generates the local index"
// from a submitted digest (§4).
func DigestToDocuments(dg *Digest) ([]*Document, error) {
	var out []*Document
	for _, dd := range dg.Documents {
		maxPos := -1
		type occ struct {
			term string
			pos  int
		}
		var occs []occ
		for _, t := range dd.Terms {
			plist, err := t.PositionList()
			if err != nil {
				return nil, err
			}
			for _, p := range plist {
				occs = append(occs, occ{term: t.Name, pos: p})
				if p > maxPos {
					maxPos = p
				}
			}
		}
		slots := make([]string, maxPos+1)
		for _, o := range occs {
			slots[o.pos] = o.term
		}
		for i, s := range slots {
			if s == "" {
				// Padding token: consumes a position, then is filtered by
				// the analyzer's stopword list.
				slots[i] = "the"
			}
		}
		out = append(out, &Document{
			Name:   dd.URL,
			Title:  dd.Title,
			Body:   strings.Join(slots, " "),
			URL:    dd.URL,
			Access: Access{Public: true},
		})
	}
	return out, nil
}
