package docs

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/textproc"
)

func TestStoreAddGetRemove(t *testing.T) {
	s := NewStore()
	d1, err := s.Add(&Document{Name: "a.txt", Title: "A", Body: "alpha"})
	if err != nil {
		t.Fatal(err)
	}
	d2, err := s.Add(&Document{Name: "b.txt", Title: "B", Body: "beta"})
	if err != nil {
		t.Fatal(err)
	}
	if d1.ID == d2.ID {
		t.Fatal("distinct documents must get distinct IDs")
	}
	if got := s.Get(d1.ID); got == nil || got.Title != "A" {
		t.Fatalf("Get = %+v", got)
	}
	if got := s.GetByName("b.txt"); got == nil || got.ID != d2.ID {
		t.Fatalf("GetByName = %+v", got)
	}
	if !s.Remove(d1.ID) {
		t.Fatal("remove existing")
	}
	if s.Remove(d1.ID) {
		t.Fatal("remove twice")
	}
	if s.Len() != 1 {
		t.Fatalf("len = %d", s.Len())
	}
}

func TestStoreReplaceByName(t *testing.T) {
	s := NewStore()
	d1, _ := s.Add(&Document{Name: "a.txt", Body: "v1"})
	d2, _ := s.Add(&Document{Name: "a.txt", Body: "v2"})
	if d1.ID != d2.ID {
		t.Fatal("overwriting a name must keep the ID")
	}
	if got := s.Get(d1.ID); got.Body != "v2" {
		t.Fatalf("body = %q", got.Body)
	}
	if s.Len() != 1 {
		t.Fatalf("len = %d", s.Len())
	}
}

func TestStoreAddValidation(t *testing.T) {
	s := NewStore()
	if _, err := s.Add(nil); err == nil {
		t.Fatal("nil document must be rejected")
	}
	if _, err := s.Add(&Document{}); err == nil {
		t.Fatal("unnamed document must be rejected")
	}
}

func TestStoreDoesNotAliasCaller(t *testing.T) {
	s := NewStore()
	orig := &Document{Name: "a.txt", Body: "original"}
	stored, _ := s.Add(orig)
	orig.Body = "mutated"
	if got := s.Get(stored.ID); got.Body != "original" {
		t.Fatal("store must copy the caller's document")
	}
}

func TestAccessControl(t *testing.T) {
	s := NewStore()
	d, _ := s.Add(&Document{Name: "secret.txt", Body: "classified",
		Access: Access{User: "alice", Password: "pw"}})
	if s.Authorize(d.ID, "", "") {
		t.Fatal("protected document must reject anonymous access")
	}
	if s.Authorize(d.ID, "alice", "wrong") {
		t.Fatal("wrong password must be rejected")
	}
	if !s.Authorize(d.ID, "alice", "pw") {
		t.Fatal("correct credentials must be accepted")
	}
	if s.Authorize(999, "alice", "pw") {
		t.Fatal("unknown document must be unauthorized")
	}
	if !s.SetAccess(d.ID, Access{Public: true}) {
		t.Fatal("SetAccess on existing doc")
	}
	if !s.Authorize(d.ID, "", "") {
		t.Fatal("public document must accept anonymous access")
	}
}

func TestAccessEmptyUserNeverAuthorizes(t *testing.T) {
	a := Access{User: "", Password: ""}
	if a.Authorize("", "") {
		t.Fatal("non-public document with empty credentials must not authorize empty login")
	}
}

func TestSnippet(t *testing.T) {
	d := &Document{Body: "  The   quick\nbrown\tfox  "}
	if got := d.Snippet(100); got != "The quick brown fox" {
		t.Fatalf("snippet = %q", got)
	}
	if got := d.Snippet(9); got != "The quick" {
		t.Fatalf("snippet(9) = %q", got)
	}
}

func TestParseText(t *testing.T) {
	d, err := Parse("notes.txt", []byte("\n\nFirst line title\nbody text here"))
	if err != nil {
		t.Fatal(err)
	}
	if d.Title != "First line title" {
		t.Fatalf("title = %q", d.Title)
	}
	if !strings.Contains(d.Body, "body text here") {
		t.Fatalf("body = %q", d.Body)
	}
}

func TestParseHTML(t *testing.T) {
	html := `<html><head><title>P2P &amp; IR</title>
	<style>body { color: red }</style>
	<script>var x = "<ignored>";</script></head>
	<body><h1>Heading</h1><p>peer to peer</p></body></html>`
	d, err := Parse("page.html", []byte(html))
	if err != nil {
		t.Fatal(err)
	}
	if d.Title != "P2P & IR" {
		t.Fatalf("title = %q", d.Title)
	}
	if strings.Contains(d.Body, "color") || strings.Contains(d.Body, "var x") {
		t.Fatalf("style/script leaked into body: %q", d.Body)
	}
	if !strings.Contains(d.Body, "Heading") || !strings.Contains(d.Body, "peer to peer") {
		t.Fatalf("body = %q", d.Body)
	}
}

func TestParseHTMLWordBoundaries(t *testing.T) {
	d, err := Parse("x.html", []byte("<p>alpha</p><p>beta</p>"))
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(d.Body, "alphabeta") {
		t.Fatalf("adjacent blocks fused: %q", d.Body)
	}
}

func TestParseAlvisXML(t *testing.T) {
	src := `<alvis-document>
  <url>http://example.org/video.mp4</url>
  <title>Demo video</title>
  <content>A recorded demonstration of distributed retrieval.</content>
</alvis-document>`
	d, err := Parse("video.xml", []byte(src))
	if err != nil {
		t.Fatal(err)
	}
	if d.URL != "http://example.org/video.mp4" || d.Title != "Demo video" {
		t.Fatalf("parsed = %+v", d)
	}
	if !strings.Contains(d.Body, "distributed retrieval") {
		t.Fatalf("body = %q", d.Body)
	}
}

func TestParseAlvisXMLErrors(t *testing.T) {
	if _, err := Parse("bad.xml", []byte("not xml at all <")); err == nil {
		t.Fatal("malformed xml must error")
	}
	if _, err := Parse("empty.xml", []byte("<alvis-document></alvis-document>")); err == nil {
		t.Fatal("empty alvis document must error")
	}
}

func TestAlvisXMLRoundTrip(t *testing.T) {
	d := &Document{Title: "T", Body: "some content", URL: "http://x/y"}
	enc, err := EncodeAlvisXML(d)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseAlvisXML("f.xml", enc)
	if err != nil {
		t.Fatal(err)
	}
	if got.Title != "T" || got.URL != "http://x/y" || !strings.Contains(got.Body, "some content") {
		t.Fatalf("round trip = %+v", got)
	}
}

func TestDigestRoundTrip(t *testing.T) {
	a := textproc.NewAnalyzer(textproc.AnalyzerConfig{})
	documents := []*Document{
		{Name: "d1", Title: "Peer retrieval", Body: "peers retrieve documents from peers", URL: "http://h/d1"},
		{Name: "d2", Title: "Indexing", Body: "distributed indexing of text", URL: "http://h/d2"},
	}
	dg := BuildDigest(documents, a)
	if len(dg.Documents) != 2 {
		t.Fatalf("digest docs = %d", len(dg.Documents))
	}

	var buf bytes.Buffer
	if err := WriteDigest(&buf, dg); err != nil {
		t.Fatal(err)
	}
	back, err := ReadDigest(&buf)
	if err != nil {
		t.Fatal(err)
	}
	rebuilt, err := DigestToDocuments(back)
	if err != nil {
		t.Fatal(err)
	}
	if len(rebuilt) != 2 {
		t.Fatalf("rebuilt docs = %d", len(rebuilt))
	}
	// The key property: re-analyzing the synthesized bodies reproduces the
	// original term/position index.
	for i, orig := range documents {
		origToks := a.Tokens(orig.Body)
		gotToks := a.Tokens(rebuilt[i].Body)
		if len(origToks) != len(gotToks) {
			t.Fatalf("doc %d: token count %d != %d", i, len(gotToks), len(origToks))
		}
		for j := range origToks {
			if origToks[j] != gotToks[j] {
				t.Fatalf("doc %d token %d: %+v != %+v", i, j, gotToks[j], origToks[j])
			}
		}
	}
}

func TestDigestPositionParsing(t *testing.T) {
	term := DigestTerm{Name: "x", Positions: "1 5 9"}
	got, err := term.PositionList()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[2] != 9 {
		t.Fatalf("positions = %v", got)
	}
	for _, bad := range []string{"1 x", "-2", "1 2 3four"} {
		if _, err := (DigestTerm{Positions: bad}).PositionList(); err == nil {
			t.Errorf("positions %q must fail", bad)
		}
	}
}

func TestDigestRejectsCorruptPositions(t *testing.T) {
	dg := &Digest{Documents: []DigestDoc{{URL: "u", Terms: []DigestTerm{{Name: "a", Positions: "bad"}}}}}
	if _, err := DigestToDocuments(dg); err == nil {
		t.Fatal("corrupt digest must be rejected")
	}
}
