package docs

import (
	"encoding/xml"
	"fmt"
	"path"
	"strings"
)

// Parse extracts a Document from raw file content, choosing the parser by
// file extension: .html/.htm strip markup, .xml is the Alvis document
// format, everything else is treated as plain text (the paper's client
// also accepts doc/pdf/word, which need external converters the original
// delegated to Terrier's parsers; plain text is the common denominator).
func Parse(name string, content []byte) (*Document, error) {
	switch strings.ToLower(path.Ext(name)) {
	case ".html", ".htm":
		return parseHTML(name, string(content))
	case ".xml":
		return ParseAlvisXML(name, content)
	default:
		return parseText(name, string(content)), nil
	}
}

func parseText(name, content string) *Document {
	title := name
	// Use the first non-empty line as the title, like the original
	// client's file manager does for bare text files.
	for _, line := range strings.Split(content, "\n") {
		if t := strings.TrimSpace(line); t != "" {
			if len(t) > 120 {
				t = t[:120]
			}
			title = t
			break
		}
	}
	return &Document{Name: name, Title: title, Body: content, Access: Access{Public: true}}
}

// parseHTML strips tags, skipping script/style content, decoding the
// common entities, and capturing <title>.
func parseHTML(name, content string) (*Document, error) {
	var body strings.Builder
	var title strings.Builder
	inTitle := false
	skipUntil := "" // closing tag that ends a skipped element
	i := 0
	for i < len(content) {
		c := content[i]
		if c != '<' {
			if skipUntil == "" {
				if inTitle {
					title.WriteByte(c)
				} else {
					body.WriteByte(c)
				}
			}
			i++
			continue
		}
		end := strings.IndexByte(content[i:], '>')
		if end < 0 {
			break // unterminated tag: drop the rest
		}
		tag := content[i+1 : i+end]
		i += end + 1
		closing := strings.HasPrefix(tag, "/")
		name := strings.TrimPrefix(tag, "/")
		if nameEnd := strings.IndexAny(name, " \t\n/"); nameEnd >= 0 {
			name = name[:nameEnd]
		}
		lower := strings.ToLower(name)
		switch {
		case skipUntil != "":
			if closing && lower == skipUntil {
				skipUntil = ""
			}
		case !closing && (lower == "script" || lower == "style"):
			if !strings.HasSuffix(tag, "/") {
				skipUntil = lower
			}
		case lower == "title":
			inTitle = !closing
		default:
			// Block-level boundaries become whitespace so words don't fuse.
			body.WriteByte(' ')
		}
	}
	d := &Document{
		Name:   name,
		Title:  strings.TrimSpace(decodeEntities(title.String())),
		Body:   strings.TrimSpace(decodeEntities(body.String())),
		Access: Access{Public: true},
	}
	if d.Title == "" {
		d.Title = name
	}
	return d, nil
}

var entityReplacer = strings.NewReplacer(
	"&amp;", "&",
	"&lt;", "<",
	"&gt;", ">",
	"&quot;", `"`,
	"&#39;", "'",
	"&apos;", "'",
	"&nbsp;", " ",
)

func decodeEntities(s string) string { return entityReplacer.Replace(s) }

// AlvisXML is the Alvis document format of §4: an XML description holding
// the original URL of an (optionally external or multimedia) document and
// a textual description of its content.
type AlvisXML struct {
	XMLName xml.Name `xml:"alvis-document"`
	URL     string   `xml:"url"`
	Title   string   `xml:"title"`
	Content string   `xml:"content"`
}

// ParseAlvisXML decodes an Alvis-format XML document.
func ParseAlvisXML(name string, content []byte) (*Document, error) {
	var a AlvisXML
	if err := xml.Unmarshal(content, &a); err != nil {
		return nil, fmt.Errorf("docs: parse alvis xml %s: %w", name, err)
	}
	if a.Title == "" && a.Content == "" {
		return nil, fmt.Errorf("docs: alvis xml %s has neither title nor content", name)
	}
	title := a.Title
	if title == "" {
		title = name
	}
	return &Document{
		Name:   name,
		Title:  title,
		Body:   strings.TrimSpace(a.Title + "\n" + a.Content),
		URL:    a.URL,
		Access: Access{Public: true},
	}, nil
}

// EncodeAlvisXML renders a document in the Alvis XML format, for
// publishing external or multimedia resources.
func EncodeAlvisXML(d *Document) ([]byte, error) {
	a := AlvisXML{URL: d.URL, Title: d.Title, Content: d.Body}
	out, err := xml.MarshalIndent(&a, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("docs: encode alvis xml: %w", err)
	}
	return append(out, '\n'), nil
}
