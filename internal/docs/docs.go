// Package docs implements AlvisP2P's document layer: the document model,
// the shared-documents manager with per-document access rights (paper §4
// "Document access"), format parsing (plain text, HTML, and the Alvis XML
// document format), and the Alvis *document digest* — the XML index
// representation that lets an external search engine publish its
// collection through a peer (paper §4 "Heterogeneity support").
package docs

import (
	"fmt"
	"sort"
	"sync"
)

// Access describes who may fetch a document's content from its hosting
// peer. Search results always expose title/snippet; the content itself is
// guarded (paper §4: "freely accessible or has a limited access
// controlled by a username and a password").
type Access struct {
	Public   bool
	User     string
	Password string
}

// Authorize reports whether the given credentials may read the document.
func (a Access) Authorize(user, password string) bool {
	if a.Public {
		return true
	}
	return user != "" && user == a.User && password == a.Password
}

// Document is one locally-held document. Documents never leave their
// owner; the network holds only index entries referring to them.
type Document struct {
	ID     uint32 // peer-local number, assigned by the Store
	Name   string // file name within the shared directory
	Title  string
	Body   string // extracted text used for indexing and snippets
	URL    string // original URL for externally published documents
	Access Access
}

// Snippet returns the first n runes of the body with whitespace collapsed,
// for result presentation.
func (d *Document) Snippet(n int) string {
	out := make([]rune, 0, n)
	space := false
	for _, r := range d.Body {
		if r == ' ' || r == '\n' || r == '\t' || r == '\r' {
			space = len(out) > 0
			continue
		}
		if space {
			out = append(out, ' ')
			space = false
		}
		out = append(out, r)
		if len(out) >= n {
			break
		}
	}
	return string(out)
}

// Store is the shared-documents manager: the peer-local registry of
// everything the user has dropped into the shared directory. It is safe
// for concurrent use.
type Store struct {
	mu     sync.RWMutex
	docs   map[uint32]*Document
	byName map[string]uint32
	nextID uint32
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{docs: make(map[uint32]*Document), byName: make(map[string]uint32)}
}

// Add registers a document and assigns its local ID. Adding a document
// whose Name is already present replaces the previous version (same ID),
// mirroring a file overwrite in the shared directory.
func (s *Store) Add(d *Document) (*Document, error) {
	if d == nil {
		return nil, fmt.Errorf("docs: nil document")
	}
	if d.Name == "" {
		return nil, fmt.Errorf("docs: document needs a name")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	cp := *d
	if id, exists := s.byName[cp.Name]; exists {
		cp.ID = id
	} else {
		cp.ID = s.nextID
		s.nextID++
		s.byName[cp.Name] = cp.ID
	}
	s.docs[cp.ID] = &cp
	return &cp, nil
}

// Get returns the document with the given local ID, or nil.
func (s *Store) Get(id uint32) *Document {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.docs[id]
}

// GetByName returns the document with the given name, or nil.
func (s *Store) GetByName(name string) *Document {
	s.mu.RLock()
	defer s.mu.RUnlock()
	id, ok := s.byName[name]
	if !ok {
		return nil
	}
	return s.docs[id]
}

// Remove deletes a document. It reports whether the document existed.
func (s *Store) Remove(id uint32) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	d, ok := s.docs[id]
	if !ok {
		return false
	}
	delete(s.docs, id)
	delete(s.byName, d.Name)
	return true
}

// SetAccess updates a document's access policy.
func (s *Store) SetAccess(id uint32, a Access) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	d, ok := s.docs[id]
	if !ok {
		return false
	}
	d.Access = a
	return true
}

// Authorize reports whether credentials may read document id. Unknown
// documents are unauthorized.
func (s *Store) Authorize(id uint32, user, password string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	d, ok := s.docs[id]
	return ok && d.Access.Authorize(user, password)
}

// List returns all documents ordered by ID.
func (s *Store) List() []*Document {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]*Document, 0, len(s.docs))
	for _, d := range s.docs {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Len returns the number of stored documents.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.docs)
}
