// Package sim is the experiment harness: it spins up in-memory AlvisP2P
// networks (Figure 3's topology), distributes synthetic collections over
// the peers, drives the indexing strategies and query workloads, and
// measures exactly what the paper's demonstration screens report —
// bandwidth, storage, hops, retrieval quality. The experiment functions
// (experiments.go) regenerate every table of EXPERIMENTS.md.
//
// The simulator is a driver: every operation it issues starts a fresh
// request lifetime, exactly like main does, so the whole package is a
// sanctioned context root.
//
//alvislint:ctxroot-package experiment driver; every query it issues is a fresh root, like main
package sim

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/dht"
	"repro/internal/docs"
	"repro/internal/globalindex"
	"repro/internal/hdk"
	"repro/internal/ids"
	"repro/internal/localindex"
	"repro/internal/postings"
	"repro/internal/transport"
)

// Options configure a simulated network.
type Options struct {
	// NumPeers is the network size (default 16).
	NumPeers int
	// Core configures every peer identically.
	Core core.Config
	// Seed drives peer identifiers and any sim-level randomness.
	Seed int64
	// SkewedIDs places 90% of the peers in 0.1% of the ring (the
	// routing experiment's stress case).
	SkewedIDs bool
	// Engines, when non-nil, assigns peer i the storage engine
	// Engines[i] (nil entries keep the in-memory default). The
	// persistence experiments open durable engines here; each peer owns
	// its engine and closes it on KillPeer.
	Engines []globalindex.StorageEngine
}

// Network is a simulated AlvisP2P network plus the bookkeeping the
// experiments need (global document identity, the centralized reference,
// traffic meters).
type Network struct {
	Opts  Options
	Net   *transport.Mem
	Peers []*core.Peer
	Base  []*baseline.Service

	// Collection bookkeeping (after Distribute).
	Collection *corpus.Collection
	RefOf      []postings.DocRef       // corpus doc index -> network ref
	CorpusDoc  map[postings.DocRef]int // network ref -> corpus doc index
	Central    *baseline.Centralized   // reference engine over the union
	docsOf     [][]int                 // peer index -> corpus doc indexes it hosts
}

// NewNetwork builds the network with oracle-installed routing tables
// (the protocol-built equivalence is covered by the dht tests; large
// experiment rings would take thousands of join/stabilize rounds for no
// additional fidelity).
func NewNetwork(opts Options) *Network {
	if opts.NumPeers == 0 {
		opts.NumPeers = 16
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	n := &Network{
		Opts:      opts,
		Net:       transport.NewMem(),
		CorpusDoc: make(map[postings.DocRef]int),
	}
	nodes := make([]*dht.Node, 0, opts.NumPeers)
	for i := 0; i < opts.NumPeers; i++ {
		var id ids.ID
		if opts.SkewedIDs {
			denseStart := uint64(float64(math.MaxUint64) * 0.999)
			if rng.Float64() < 0.9 {
				id = ids.ID(denseStart + rng.Uint64()%(math.MaxUint64-denseStart))
			} else {
				id = ids.ID(rng.Uint64() % denseStart)
			}
		} else {
			id = ids.ID(rng.Uint64())
		}
		d := transport.NewDispatcher()
		ep := n.Net.Endpoint(fmt.Sprintf("peer%03d", i), d.Serve)
		cfg := opts.Core
		if i < len(opts.Engines) {
			cfg.Engine = opts.Engines[i]
		}
		p := core.NewPeer(id, ep, d, cfg)
		n.Peers = append(n.Peers, p)
		n.Base = append(n.Base, baseline.NewService(p.GlobalIndex(), d))
		nodes = append(nodes, p.Node())
	}
	dht.BuildOracleTables(nodes)
	return n
}

// AddPeer attaches one more peer to the network (same core
// configuration) and joins it through bootstrap — the churn experiment's
// mid-workload join. The caller drives subsequent maintenance rounds.
func (n *Network) AddPeer(name string, id ids.ID, bootstrap transport.Addr) (*core.Peer, error) {
	d := transport.NewDispatcher()
	ep := n.Net.Endpoint(name, d.Serve)
	p := core.NewPeer(id, ep, d, n.Opts.Core)
	base := baseline.NewService(p.GlobalIndex(), d)
	if err := p.Join(context.Background(), bootstrap); err != nil {
		return nil, err // a failed join leaves the network untouched
	}
	n.Peers = append(n.Peers, p)
	n.Base = append(n.Base, base)
	return p, nil
}

// Distribute spreads a collection round-robin over the peers (documents
// stay wholly at one peer, like the paper's shared directories) and
// builds the centralized reference engine over the same documents.
func (n *Network) Distribute(c *corpus.Collection) error {
	n.Collection = c
	n.RefOf = make([]postings.DocRef, len(c.Docs))
	n.docsOf = make([][]int, len(n.Peers))
	analyzer := n.Peers[0].LocalIndex().Analyzer()
	central := localindex.New(analyzer)
	for i, doc := range c.Docs {
		pi := i % len(n.Peers)
		peer := n.Peers[pi]
		stored, err := peer.AddDocument(docFromCorpus(doc))
		if err != nil {
			return err
		}
		n.docsOf[pi] = append(n.docsOf[pi], i)
		ref := postings.DocRef{Peer: peer.Addr(), Doc: stored.ID}
		n.RefOf[i] = ref
		n.CorpusDoc[ref] = i
		central.Add(uint32(i), doc.Title+"\n"+doc.Body)
	}
	n.Central = baseline.NewCentralized(central)
	return nil
}

// KillPeer takes peer i down: its address stops accepting traffic and
// the peer is closed, which flushes (and closes) its storage engine.
// Restart it with RestartPeer. (Crash-without-flush recovery is pinned
// by the internal/storage tests; at the network level the interesting
// difference is durable-versus-lost state, not the flush path.)
func (n *Network) KillPeer(i int) {
	n.Net.SetDown(n.Peers[i].Addr(), true)
	_ = n.Peers[i].Close()
}

// RestartPeer revives a killed peer with the same identity and address,
// backed by the given storage engine (nil = a fresh in-memory engine,
// the cold-rejoin arm; a reopened durable engine makes it the
// delta-rejoin arm). Its shared documents are restored from the
// collection bookkeeping — document content lives outside the index —
// and the peer rejoins through bootstrap; the caller drives subsequent
// maintenance rounds like any join.
func (n *Network) RestartPeer(ctx context.Context, i int, engine globalindex.StorageEngine, bootstrap transport.Addr) (*core.Peer, error) {
	old := n.Peers[i]
	addr := old.Addr()
	id := old.Node().ID()
	n.Net.SetDown(addr, false)
	d := transport.NewDispatcher()
	ep := n.Net.Endpoint(string(addr), d.Serve)
	cfg := n.Opts.Core
	cfg.Engine = engine
	p, err := core.OpenPeer(id, ep, d, cfg)
	if err != nil {
		return nil, err
	}
	if n.docsOf != nil {
		// Same documents in the same order reproduce the same local doc
		// IDs, so pre-kill DocRefs held in remote posting lists stay
		// valid against the restarted peer.
		for _, di := range n.docsOf[i] {
			if _, err := p.AddDocument(docFromCorpus(n.Collection.Docs[di])); err != nil {
				return nil, err
			}
		}
	}
	if err := p.Join(ctx, bootstrap); err != nil {
		return nil, err
	}
	n.Peers[i] = p
	n.Base[i] = baseline.NewService(p.GlobalIndex(), d)
	return p, nil
}

func docFromCorpus(d corpus.Doc) *docs.Document {
	return &docs.Document{Name: d.Name, Title: d.Title, Body: d.Body, Access: docs.Access{Public: true}}
}

// PublishStats pushes every peer's statistics contribution.
func (n *Network) PublishStats() error {
	ctx := context.Background()
	for _, p := range n.Peers {
		if err := p.PublishStats(ctx); err != nil {
			return err
		}
	}
	return nil
}

// PublishHDK runs the fleet-synchronized HDK process: all peers publish
// level 1, then expansion rounds proceed in lockstep until no peer
// publishes anything new. Statistics must be published first.
func (n *Network) PublishHDK() (keys, postingsShipped int, err error) {
	ctx := context.Background()
	pubs := make([]*hdk.Publisher, len(n.Peers))
	for i, p := range n.Peers {
		hp, err := p.NewHDKPublisher(ctx)
		if err != nil {
			return 0, 0, err
		}
		if err := hp.PublishTerms(ctx); err != nil {
			return 0, 0, err
		}
		pubs[i] = hp
	}
	for {
		total := 0
		for _, hp := range pubs {
			m, err := hp.ExpandRound(ctx)
			if err != nil {
				return 0, 0, err
			}
			total += m
		}
		if total == 0 {
			break
		}
	}
	for _, hp := range pubs {
		res := hp.Result()
		keys += res.KeysPublished
		postingsShipped += res.PostingsPublished
	}
	return keys, postingsShipped, nil
}

// PublishBaseline pushes every peer's complete single-term lists (the
// [11] baseline index). Statistics must be published first.
func (n *Network) PublishBaseline() (keys, shipped int, err error) {
	ctx := context.Background()
	for i, p := range n.Peers {
		stats, err := p.GlobalStats().Fetch(ctx, p.LocalIndex().Terms())
		if err != nil {
			return keys, shipped, err
		}
		k, s, err := n.Base[i].PublishLocal(ctx, p.LocalIndex(), stats, p.Addr())
		if err != nil {
			return keys, shipped, err
		}
		keys += k
		shipped += s
	}
	return keys, shipped, nil
}

// IndexStorage sums the global-index storage over all peers.
func (n *Network) IndexStorage() (keys, postingsStored, bytes int) {
	seen := make(map[string]bool)
	for _, p := range n.Peers {
		st := p.GlobalIndex().Store().Stats()
		postingsStored += st.Postings
		bytes += st.Bytes
		for _, k := range p.GlobalIndex().Store().Keys() {
			if !seen[k] {
				seen[k] = true
				keys++
			}
		}
	}
	return keys, postingsStored, bytes
}

// RandomPeer returns a deterministic pseudo-random peer for a query.
func (n *Network) RandomPeer(rng *rand.Rand) *core.Peer {
	return n.Peers[rng.Intn(len(n.Peers))]
}

// SearchCorpusDocs runs a query from the given peer and maps the results
// back to corpus document indexes (unknown refs are dropped).
func (n *Network) SearchCorpusDocs(p *core.Peer, query string, opts ...core.SearchOption) ([]int, *core.QueryTrace, error) {
	resp, err := p.Search(context.Background(), query, opts...)
	if err != nil {
		var trace *core.QueryTrace
		if resp != nil {
			trace = resp.Trace
		}
		return nil, trace, err
	}
	out := make([]int, 0, len(resp.Results))
	for _, r := range resp.Results {
		if idx, ok := n.CorpusDoc[r.Ref]; ok {
			out = append(out, idx)
		}
	}
	return out, resp.Trace, nil
}

// OverlapAtK computes |got ∩ want| / k, the retrieval-quality metric of
// the HDK/QDI evaluations (overlap with the centralized top-k).
func OverlapAtK(got, want []int, k int) float64 {
	if k <= 0 {
		return 0
	}
	if len(want) > k {
		want = want[:k]
	}
	if len(got) > k {
		got = got[:k]
	}
	if len(want) == 0 {
		return 1 // nothing to find: trivially perfect
	}
	wantSet := make(map[int]bool, len(want))
	for _, d := range want {
		wantSet[d] = true
	}
	hit := 0
	for _, d := range got {
		if wantSet[d] {
			hit++
		}
	}
	return float64(hit) / float64(len(want))
}

// CentralTopK returns the centralized reference's top-k corpus doc
// indexes for a query.
func (n *Network) CentralTopK(query string, k int) []int {
	res := n.Central.Search(query, k)
	out := make([]int, len(res))
	for i, r := range res {
		out[i] = int(r.Doc)
	}
	return out
}
