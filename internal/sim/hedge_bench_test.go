package sim

import (
	"testing"
)

// The tail-latency benchmarks run E11's read arm (one slow replica, 60
// AnyReplica batch reads) hedged and unhedged and report the measured
// p99 as a custom metric; CI captures both into BENCH_pr4.json so the
// hedging win is tracked across revisions.

func benchReadTail(b *testing.B, hedged bool) {
	for i := 0; i < b.N; i++ {
		p99, err := runE11ReadArm(e11ParamsFor(ScaleSmall), hedged)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(p99), "p99-ms")
	}
}

func BenchmarkReadTailLatencyUnhedged(b *testing.B) { benchReadTail(b, false) }

func BenchmarkReadTailLatencyHedged(b *testing.B) { benchReadTail(b, true) }
