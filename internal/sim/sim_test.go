package sim

import (
	"strconv"
	"strings"
	"testing"
)

func TestRunF1(t *testing.T) {
	tbl, err := RunF1()
	if err != nil {
		t.Fatal(err)
	}
	out := tbl.String()
	// Figure 1: probes = {abc, ab, ac, bc, a} = 5; skipped = {b, c} = 2.
	if !strings.Contains(out, "probes issued") {
		t.Fatalf("table:\n%s", out)
	}
	assertCell(t, out, "probes issued", "5")
	assertCell(t, out, "keys skipped", "2")
	assertCell(t, out, "result docs", "3")
}

func assertCell(t *testing.T, table, rowPrefix, want string) {
	t.Helper()
	for _, line := range strings.Split(table, "\n") {
		if strings.HasPrefix(line, rowPrefix) {
			if !strings.Contains(line, want) {
				t.Errorf("row %q = %q, want value %s", rowPrefix, line, want)
			}
			return
		}
	}
	t.Errorf("row %q not found in table:\n%s", rowPrefix, table)
}

func TestRunE1SmallShape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment shape test skipped in -short mode")
	}
	tbl, err := RunE1(ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	rows := tableRows(tbl.String())
	if len(rows) != 2 {
		t.Fatalf("E1 rows = %d, want 2\n%s", len(rows), tbl)
	}
	// The paper's shape: the baseline costs more per query than HDK at
	// every size, and the gap widens as the collection grows.
	r0, r1 := rows[0], rows[1]
	base0, hdk0 := atoi(t, r0[1]), atoi(t, r0[2])
	base1, hdk1 := atoi(t, r1[1]), atoi(t, r1[2])
	if base0 <= hdk0 || base1 <= hdk1 {
		t.Errorf("baseline should cost more than HDK:\n%s", tbl)
	}
	growBase := float64(base1) / float64(base0)
	growHDK := float64(hdk1) / float64(hdk0)
	if growBase <= growHDK {
		t.Errorf("baseline growth %.2fx should exceed HDK growth %.2fx\n%s", growBase, growHDK, tbl)
	}
}

func TestRunE2SmallShape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment shape test skipped in -short mode")
	}
	tbl, err := RunE2(ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	rows := tableRows(tbl.String())
	if len(rows) != 4 { // 2 DFmax x 2 smax
		t.Fatalf("E2 rows = %d\n%s", len(rows), tbl)
	}
	// Lower DFmax means more frequent keys, hence more multi-term keys.
	multiAtDF := map[string]int{}
	for _, r := range rows {
		if r[1] == "3" { // smax 3 rows
			multiAtDF[r[0]] = atoi(t, r[3])
		}
	}
	if multiAtDF["20"] <= multiAtDF["40"] {
		t.Errorf("smaller DFmax must generate more multi-term keys: %v\n%s", multiAtDF, tbl)
	}
	// smax 3 never has fewer keys than smax 2 at the same DFmax.
	var k2, k3 int
	for _, r := range rows {
		if r[0] == "20" && r[1] == "2" {
			k2 = atoi(t, r[2])
		}
		if r[0] == "20" && r[1] == "3" {
			k3 = atoi(t, r[2])
		}
	}
	if k3 < k2 {
		t.Errorf("smax 3 keys (%d) < smax 2 keys (%d)\n%s", k3, k2, tbl)
	}
}

func TestRunE3SmallShape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment shape test skipped in -short mode")
	}
	tbl, err := RunE3(ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	rows := tableRows(tbl.String())
	if len(rows) != 3 {
		t.Fatalf("E3 rows = %d\n%s", len(rows), tbl)
	}
	for _, r := range rows {
		o10 := atof(t, r[1])
		if r[0] == "HDK" && o10 < 0.5 {
			t.Errorf("HDK overlap@10 = %.2f too low\n%s", o10, tbl)
		}
	}
	// Warm QDI must beat cold QDI.
	var cold, warm float64
	for _, r := range rows {
		if strings.HasPrefix(r[0], "QDI cold") {
			cold = atof(t, r[2])
		}
		if strings.HasPrefix(r[0], "QDI warm") {
			warm = atof(t, r[2])
		}
	}
	if warm < cold-0.05 {
		t.Errorf("QDI warm overlap %.2f well below cold %.2f\n%s", warm, cold, tbl)
	}
}

func TestRunE4SmallShape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment shape test skipped in -short mode")
	}
	tbl, err := RunE4(ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	rows := tableRows(tbl.String())
	if len(rows) != 10 {
		t.Fatalf("E4 rows = %d\n%s", len(rows), tbl)
	}
	// Hit rate grows within the first workload.
	first := atof(t, rows[0][2])
	last := atof(t, rows[4][2])
	if last <= first {
		t.Errorf("QDI hit rate should grow: slice1=%.2f slice5=%.2f\n%s", first, last, tbl)
	}
	// Activations happen; the index holds multi-term keys by slice 5.
	if atoi(t, rows[4][4]) == 0 || atoi(t, rows[4][3]) == 0 {
		t.Errorf("no QDI activations observed\n%s", tbl)
	}
}

func TestRunE5SmallShape(t *testing.T) {
	tbl, err := RunE5(ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	rows := tableRows(tbl.String())
	if len(rows) != 8 { // 2 sizes x 2 distributions x 2 policies
		t.Fatalf("E5 rows = %d\n%s", len(rows), tbl)
	}
	// Find skewed rows at the largest size: hop-space must beat id-space.
	var hop, id float64
	for _, r := range rows {
		if r[0] == "256" && r[1] == "skewed" {
			if r[2] == "hop-space" {
				hop = atof(t, r[3])
			} else {
				id = atof(t, r[3])
			}
		}
	}
	if hop == 0 || id == 0 {
		t.Fatalf("missing skewed rows\n%s", tbl)
	}
	if id <= hop {
		t.Errorf("under skew id-space (%.2f) should exceed hop-space (%.2f)\n%s", id, hop, tbl)
	}
}

func TestRunE6SmallShape(t *testing.T) {
	tbl, err := RunE6(ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	rows := tableRows(tbl.String())
	if len(rows) != 4 {
		t.Fatalf("E6 rows = %d\n%s", len(rows), tbl)
	}
	// At the highest load CC goodput exceeds no-CC goodput.
	last := rows[len(rows)-1]
	cc, no := atoi(t, last[1]), atoi(t, last[2])
	if cc <= no {
		t.Errorf("CC goodput %d should exceed no-CC %d at max load\n%s", cc, no, tbl)
	}
}

func TestRunE7SmallShape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment shape test skipped in -short mode")
	}
	tbl, err := RunE7(ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	rows := tableRows(tbl.String())
	if len(rows) < 3 {
		t.Fatalf("E7 rows = %d\n%s", len(rows), tbl)
	}
	// Probes grow with query length, and pruning never probes more than
	// the full exploration.
	prevPruned := 0.0
	for _, r := range rows {
		pruned, full := atof(t, r[1]), atof(t, r[2])
		if pruned > full {
			t.Errorf("pruned probes %.1f exceed full %.1f\n%s", pruned, full, tbl)
		}
		if pruned < prevPruned {
			// probes should be non-decreasing in query length
			t.Errorf("probes decreased with query length\n%s", tbl)
		}
		prevPruned = pruned
	}
}

func TestRunE8SmallShape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment shape test skipped in -short mode")
	}
	tbl, err := RunE8(ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	rows := tableRows(tbl.String())
	if len(rows) != 3 {
		t.Fatalf("E8 rows = %d\n%s", len(rows), tbl)
	}
	for _, r := range rows {
		if atoi(t, r[1]) == 0 {
			t.Errorf("phase %q moved no messages\n%s", r[0], tbl)
		}
	}
}

// tableRows parses the body rows of a rendered table (after the header
// and separator lines).
func tableRows(rendered string) [][]string {
	lines := strings.Split(strings.TrimSpace(rendered), "\n")
	var rows [][]string
	body := false
	for _, line := range lines {
		if strings.HasPrefix(line, "---") {
			body = true
			continue
		}
		if !body {
			continue
		}
		fields := splitColumns(line)
		if len(fields) > 0 {
			rows = append(rows, fields)
		}
	}
	return rows
}

// splitColumns splits on runs of 2+ spaces (the table's column gap).
func splitColumns(line string) []string {
	var out []string
	for _, f := range strings.Split(line, "  ") {
		f = strings.TrimSpace(f)
		if f != "" {
			out = append(out, f)
		}
	}
	return out
}

func atoi(t *testing.T, s string) int {
	t.Helper()
	v, err := strconv.Atoi(strings.TrimSpace(s))
	if err != nil {
		t.Fatalf("not an int: %q", s)
	}
	return v
}

func atof(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil {
		t.Fatalf("not a float: %q", s)
	}
	return v
}
