package sim

import (
	"testing"
)

// TestRunE13SmallShape pins the streamed top-k experiment's claims: on a
// zipf(1.0) collection the streamed score-bounded read path moves at
// least 5x fewer retrieval bytes per query than one-shot full pulls,
// returns the identical top-10 result set for every query, and actually
// exercises the early-termination machinery.
func TestRunE13SmallShape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment shape test skipped in -short mode")
	}
	tbl, err := RunE13(ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	rows := tableRows(tbl.String())
	if len(rows) != 2 {
		t.Fatalf("E13 rows = %d, want 2 (HDK, QDI warm)\n%s", len(rows), tbl)
	}
	for _, r := range rows {
		full, streamed := atoi(t, r[1]), atoi(t, r[2])
		if full == 0 || streamed == 0 {
			t.Fatalf("%s arm moved no bytes\n%s", r[0], tbl)
		}
		if ratio := atof(t, r[3]); ratio < 5 {
			t.Errorf("%s streamed ratio = %.2fx, want >= 5x\n%s", r[0], ratio, tbl)
		}
		if ident := atof(t, r[4]); ident < 1.0 {
			t.Errorf("%s identical@10 = %.3f, want 1.0\n%s", r[0], ident, tbl)
		}
		if early := atof(t, r[6]); early <= 0 {
			t.Errorf("%s early terminations never fired\n%s", r[0], tbl)
		}
	}
}
