package sim

import (
	"context"
	"strconv"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/ids"
)

// TestRunE14SmallShape pins the hot-key read-path claims: under
// zipf(1.0) repeat-query traffic the caching + soft-replication arm
// answers with a p99 at most half the disabled arm's, spreads served
// load to at most half the disabled arm's max/mean imbalance, returns
// the identical top-10 set for every query, and actually exercises both
// the client caches and the promotion machinery.
func TestRunE14SmallShape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment shape test skipped in -short mode")
	}
	tbl, err := RunE14(ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	rows := tableRows(tbl.String())
	if len(rows) != 2 {
		t.Fatalf("E14 rows = %d, want 2\n%s", len(rows), tbl)
	}
	var off, on []string
	for _, r := range rows {
		switch r[0] {
		case "disabled":
			off = r
		case "hot-key path":
			on = r
		}
	}
	if off == nil || on == nil {
		t.Fatalf("missing arms\n%s", tbl)
	}
	p99Off, p99On := atof(t, off[1]), atof(t, on[1])
	if p99Off <= 0 {
		t.Fatalf("disabled arm p99 = %v, experiment measured nothing\n%s", p99Off, tbl)
	}
	if p99On > 0.5*p99Off {
		t.Errorf("hot-key p99 = %.3fms, want <= half of disabled %.3fms\n%s", p99On, p99Off, tbl)
	}
	varOff, varOn := atof(t, off[2]), atof(t, on[2])
	if varOff <= 1 {
		t.Fatalf("disabled arm load max/mean = %.2f, no imbalance to improve\n%s", varOff, tbl)
	}
	if varOn > 0.5*varOff {
		t.Errorf("hot-key load max/mean = %.2f, want <= half of disabled %.2f\n%s", varOn, varOff, tbl)
	}
	if ident := atof(t, on[3]); ident < 1.0 {
		t.Errorf("identical@10 = %.3f, want 1.0\n%s", ident, tbl)
	}
	if hit := atof(t, on[4]); hit <= 0 {
		t.Errorf("hot-key arm never hit a cache\n%s", tbl)
	}
	if ann := atof(t, on[5]); ann <= 0 {
		t.Errorf("hot-key arm never announced a soft replica\n%s", tbl)
	}
}

// invalidationCount sums a peer's alvis_readcache_invalidations_total
// across both cache series.
func invalidationCount(p *core.Peer) float64 {
	var sum float64
	for _, f := range p.Telemetry().Gather() {
		if f.Name != "alvis_readcache_invalidations_total" {
			continue
		}
		for _, s := range f.Samples {
			sum += s.Value
		}
	}
	return sum
}

// TestHotKeyCacheChurnInvalidation is the churn regression for the
// hot-key caches: a frontend that cached a hot key's results loses the
// key's home peer mid-workload. The frontend is the home's ring
// predecessor, so the very first repair round changes its successor
// list, bumps its ring epoch, and must invalidate its caches — the
// post-churn repeat answers from live index state (the R=3 replicas),
// never from a cache entry resolved against the dead ring.
func TestHotKeyCacheChurnInvalidation(t *testing.T) {
	if testing.Short() {
		t.Skip("churn regression skipped in -short mode")
	}
	const numDocs = 500
	cfg := core.Config{
		HDK:               hdkConfigFor(numDocs),
		TopK:              10,
		ReplicationFactor: 3,
		StreamTopK:        true,
		ResultCache:       32,
		PrefixCache:       128,
		CacheTTL:          time.Minute,
		HotKeyThreshold:   2,
		SoftReplicas:      2,
		SoftReplicaTTL:    time.Minute,
	}
	n := NewNetwork(Options{NumPeers: 16, Core: cfg, Seed: 163})
	if err := n.Distribute(corpusFor(numDocs, 161)); err != nil {
		t.Fatal(err)
	}
	if err := n.PublishStats(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := n.PublishHDK(); err != nil {
		t.Fatal(err)
	}
	w := corpus.GenerateWorkload(n.Collection, corpus.WorkloadParams{NumQueries: 30, MaxTerms: 2, Seed: 165})
	opts := []core.SearchOption{
		core.WithReadConsistency(core.ReadAnyReplica),
		core.WithHedging(2 * time.Millisecond),
	}

	// The hot query: first workload query with results whose first term's
	// home peer has a live ring predecessor among the other peers.
	var query string
	var home int
	var frontend *core.Peer
	for _, q := range w.Queries {
		key := ids.KeyString(q.Terms[:1])
		hi := -1
		for i, p := range n.Peers {
			if p.Node().Responsible(ids.HashString(key)) {
				hi = i
				break
			}
		}
		if hi < 0 {
			continue
		}
		pred := n.Peers[hi].Node().Predecessor()
		var fe *core.Peer
		for i, p := range n.Peers {
			if i != hi && p.Addr() == pred.Addr {
				fe = p
				break
			}
		}
		if fe == nil {
			continue
		}
		got, _, err := n.SearchCorpusDocs(fe, q.Text(), opts...)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) > 0 {
			query, home, frontend = q.Text(), hi, fe
			break
		}
	}
	if query == "" {
		t.Fatal("no workload query with results and a usable home/frontend pair")
	}

	// Reference answer, then heat the key and cache the answer at the
	// frontend (the repeat must be cache-served: zero messages).
	reference, _, err := n.SearchCorpusDocs(frontend, query, opts...)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, _, err := n.SearchCorpusDocs(frontend, query, opts...); err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range n.Peers {
		if _, err := p.PromoteHotKeys(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	before := n.Net.Meter().Snapshot().Messages
	if _, _, err := n.SearchCorpusDocs(frontend, query, opts...); err != nil {
		t.Fatal(err)
	}
	if got := n.Net.Meter().Snapshot().Messages - before; got != 0 {
		t.Fatalf("pre-churn repeat cost %d messages, want cache-served 0", got)
	}

	// Kill the home peer mid-workload and repair the ring.
	deadAddr := n.Peers[home].Addr()
	epoch0 := frontend.Node().RingEpoch()
	inval0 := invalidationCount(frontend)
	n.KillPeer(home)
	live := make([]*core.Peer, 0, len(n.Peers)-1)
	for i, p := range n.Peers {
		if i != home {
			live = append(live, p)
		}
	}
	for r := 0; r < 20 && frontend.Node().RingEpoch() == epoch0; r++ {
		for _, p := range live {
			p.Maintain(context.Background())
		}
	}
	if frontend.Node().RingEpoch() == epoch0 {
		t.Fatal("frontend ring epoch never bumped after the home peer died")
	}
	if invalidationCount(frontend) <= inval0 {
		t.Fatal("ring change did not invalidate the frontend's caches")
	}

	// The post-churn repeat must re-resolve (network traffic, no stale
	// epoch-0 cache entry) and keep recall on the surviving documents.
	deadDoc := map[int]bool{}
	for di, ref := range n.RefOf {
		if ref.Peer == deadAddr {
			deadDoc[di] = true
		}
	}
	before = n.Net.Meter().Snapshot().Messages
	got, _, err := n.SearchCorpusDocs(frontend, query, opts...)
	if err != nil {
		t.Fatalf("post-churn query: %v", err)
	}
	if n.Net.Meter().Snapshot().Messages == before {
		t.Fatal("post-churn repeat was served from a stale cache")
	}
	// Postings for dead-hosted documents legitimately survive in index
	// replicas (same semantic as E9's settled pass), so recall is judged
	// on the surviving reference docs only.
	gotSet := map[int]bool{}
	for _, d := range got {
		gotSet[d] = true
	}
	wantLive := 0
	found := 0
	for _, d := range reference {
		if deadDoc[d] {
			continue
		}
		wantLive++
		if gotSet[d] {
			found++
		}
	}
	if wantLive == 0 {
		t.Fatal("reference answer was entirely hosted at the dead peer; pick a different seed")
	}
	if recall := float64(found) / float64(wantLive); recall < 0.99 {
		t.Fatalf("post-churn recall = %.3f (%d of %d surviving reference docs), want >= 0.99",
			recall, found, wantLive)
	}

	// The rest of the workload keeps succeeding against the repaired ring.
	ok := 0
	for _, q := range w.Queries {
		if _, _, err := n.SearchCorpusDocs(frontend, q.Text(), opts...); err == nil {
			ok++
		}
	}
	if frac := float64(ok) / float64(len(w.Queries)); frac < 0.99 {
		t.Fatalf("post-churn workload success = %.3f, want >= 0.99", frac)
	}
}

// BenchmarkHotKeyRead runs the E14 experiment once and reports the
// hot-key arm's headline numbers — CI uploads them as BENCH_pr10.json.
func BenchmarkHotKeyRead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl, err := RunE14(ScaleSmall)
		if err != nil {
			b.Fatal(err)
		}
		rows := tableRows(tbl.String())
		if len(rows) != 2 {
			b.Fatalf("E14 rows = %d\n%s", len(rows), tbl)
		}
		on := rows[1]
		parse := func(s string) float64 {
			v, err := strconv.ParseFloat(s, 64)
			if err != nil {
				b.Fatalf("parse %q: %v", s, err)
			}
			return v
		}
		b.ReportMetric(parse(on[1]), "p99-ms")
		b.ReportMetric(parse(on[2]), "load-max/mean")
		b.ReportMetric(parse(on[4]), "cache-hit-frac")
	}
}
