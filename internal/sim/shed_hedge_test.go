package sim

import (
	"strings"
	"testing"
)

// TestRunE11SmallShape pins experiment E11's claims on the small shape:
//
//   - with admission control on, the slow peer sheds doomed requests
//     before the work (sheds > 0) and executes strictly fewer
//     expired-budget requests than the PR 3 style run without admission
//     (fewer wasted RPCs);
//   - hedged, load-aware replica reads keep p99 read latency materially
//     below the unhedged hash-spread reads on the slow-replica shape —
//     under the slow peer's delay instead of at it.
func TestRunE11SmallShape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment shape test skipped in -short mode")
	}
	tbl, err := RunE11(ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	rows := tableRows(tbl.String())
	if len(rows) != 6 {
		t.Fatalf("E11 rows = %d, want 6\n%s", len(rows), tbl)
	}
	cell := func(prefix string) int {
		t.Helper()
		for _, r := range rows {
			if strings.HasPrefix(r[0], prefix) {
				return atoi(t, r[1])
			}
		}
		t.Fatalf("row %q not found\n%s", prefix, tbl)
		return 0
	}
	shedsOff := cell("sheds, admission off")
	doomedOff := cell("doomed requests executed, admission off")
	shedsOn := cell("sheds, admission on")
	doomedOn := cell("doomed requests executed, admission on")
	p99Unhedged := cell("read p99 ms, any-replica unhedged")
	p99Hedged := cell("read p99 ms, any-replica hedged")

	if shedsOff != 0 {
		t.Errorf("admission-off run shed %d requests; shedding must be opt-in\n%s", shedsOff, tbl)
	}
	if doomedOff == 0 {
		t.Fatalf("PR3 arm executed no doomed requests; the slow peer was never exercised\n%s", tbl)
	}
	if shedsOn == 0 {
		t.Errorf("admission arm never shed — deadline budgets are not acted on\n%s", tbl)
	}
	if doomedOn >= doomedOff {
		t.Errorf("wasted work did not drop: %d doomed executions with admission vs %d without\n%s",
			doomedOn, doomedOff, tbl)
	}
	// "Materially below": the unhedged tail sits at the slow peer's delay
	// (>= 90ms of the configured 100ms); the hedged tail must stay under
	// half of it.
	if p99Unhedged < 90 {
		t.Fatalf("unhedged p99 = %dms; the slow replica never landed in the read path\n%s", p99Unhedged, tbl)
	}
	if p99Hedged >= p99Unhedged/2 {
		t.Errorf("hedged p99 = %dms, not materially below unhedged %dms\n%s", p99Hedged, p99Unhedged, tbl)
	}
}
