package sim

import (
	"strings"
	"testing"
)

// TestRunE10SmallShape pins the cancellation experiment's claim: queries
// abandoned at their 50ms deadline issue measurably fewer RPCs than the
// same queries running to completion — the fan-out stops spawning work
// once the context dies, instead of the old fire-and-forget behaviour.
func TestRunE10SmallShape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment shape test skipped in -short mode")
	}
	tbl, err := RunE10(ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	rows := tableRows(tbl.String())
	if len(rows) != 2 {
		t.Fatalf("E10 rows = %d, want 2\n%s", len(rows), tbl)
	}
	var full, cancelled []string
	for _, r := range rows {
		switch {
		case strings.HasPrefix(r[0], "run-to-completion"):
			full = r
		case strings.HasPrefix(r[0], "cancel"):
			cancelled = r
		}
	}
	if full == nil || cancelled == nil {
		t.Fatalf("missing mode rows\n%s", tbl)
	}
	fullMsgs, cancelMsgs := atoi(t, full[1]), atoi(t, cancelled[1])
	if timedOut := atoi(t, cancelled[2]); timedOut == 0 {
		t.Fatalf("no query hit its deadline; the experiment exercised nothing\n%s", tbl)
	}
	// "Measurably fewer": at least 10% of the subset's RPCs saved.
	if cancelMsgs >= fullMsgs || float64(cancelMsgs) > 0.9*float64(fullMsgs) {
		t.Errorf("cancellation saved too little: %d vs %d RPCs\n%s", cancelMsgs, fullMsgs, tbl)
	}
}
