package sim

import (
	"testing"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/hdk"
)

func TestOverlapAtK(t *testing.T) {
	cases := []struct {
		got, want []int
		k         int
		expect    float64
	}{
		{[]int{1, 2, 3}, []int{1, 2, 3}, 3, 1.0},
		{[]int{1, 2, 3}, []int{3, 2, 1}, 3, 1.0}, // order-insensitive
		{[]int{1, 2, 3}, []int{4, 5, 6}, 3, 0.0},
		{[]int{1, 2}, []int{1, 3}, 2, 0.5},
		{[]int{1, 2, 3, 4}, []int{1, 2}, 2, 1.0}, // got longer than k: cut
		{[]int{1}, []int{1, 2, 3, 4}, 2, 0.5},    // want cut to k
		{nil, nil, 10, 1.0},                      // nothing to find
		{nil, []int{1}, 10, 0.0},
		{[]int{1}, []int{1}, 0, 0.0}, // degenerate k
	}
	for _, c := range cases {
		if got := OverlapAtK(c.got, c.want, c.k); got != c.expect {
			t.Errorf("OverlapAtK(%v, %v, %d) = %v, want %v", c.got, c.want, c.k, got, c.expect)
		}
	}
}

func TestNetworkDistributeBookkeeping(t *testing.T) {
	n := NewNetwork(Options{NumPeers: 4, Seed: 9, Core: core.Config{
		HDK: hdk.Config{DFMax: 5, SMax: 2, TruncK: 10},
	}})
	c := corpus.Generate(corpus.Params{NumDocs: 25, VocabSize: 60, MeanDocLen: 12, Seed: 10})
	if err := n.Distribute(c); err != nil {
		t.Fatal(err)
	}
	if len(n.RefOf) != 25 {
		t.Fatalf("RefOf = %d", len(n.RefOf))
	}
	// Round-robin placement and an invertible mapping.
	for i, ref := range n.RefOf {
		if ref.Peer != n.Peers[i%4].Addr() {
			t.Fatalf("doc %d placed at %s, want %s", i, ref.Peer, n.Peers[i%4].Addr())
		}
		if back, ok := n.CorpusDoc[ref]; !ok || back != i {
			t.Fatalf("CorpusDoc[%v] = %d, want %d", ref, back, i)
		}
	}
	// The centralized reference indexes everything.
	if n.Central.Index.NumDocs() != 25 {
		t.Fatalf("central docs = %d", n.Central.Index.NumDocs())
	}
}

func TestNetworkSkewedIDs(t *testing.T) {
	n := NewNetwork(Options{NumPeers: 40, Seed: 11, SkewedIDs: true})
	dense := 0
	threshold := uint64(float64(^uint64(0)) * 0.999)
	for _, p := range n.Peers {
		if uint64(p.Node().ID()) >= threshold {
			dense++
		}
	}
	if dense < 30 {
		t.Fatalf("only %d/40 peers in the dense region; skew option broken", dense)
	}
}

func TestHeadTermQueriesProperties(t *testing.T) {
	qs := headTermQueries(30, 20, 5)
	if len(qs) != 30 {
		t.Fatalf("generated %d queries", len(qs))
	}
	seen := map[string]bool{}
	for _, q := range qs {
		if len(q.Terms) < 2 || len(q.Terms) > 3 {
			t.Fatalf("query size %d", len(q.Terms))
		}
		if seen[q.Text()] {
			t.Fatalf("duplicate query %q", q.Text())
		}
		seen[q.Text()] = true
		for _, term := range q.Terms {
			if term < "term0000" || term > "term0019" {
				t.Fatalf("term %q outside head ranks", term)
			}
		}
	}
}

func TestFixedLengthQueries(t *testing.T) {
	c := corpus.Generate(corpus.Params{NumDocs: 100, VocabSize: 150, Seed: 13})
	for length := 1; length <= 4; length++ {
		qs := fixedLengthQueries(c, length, 10, 14)
		for _, q := range qs {
			if len(q.Terms) != length {
				t.Fatalf("length %d query has %d terms", length, len(q.Terms))
			}
		}
		if len(qs) == 0 {
			t.Fatalf("no queries of length %d", length)
		}
	}
}
