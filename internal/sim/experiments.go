package sim

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/congestion"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/dht"
	"repro/internal/globalindex"
	"repro/internal/hdk"
	"repro/internal/ids"
	"repro/internal/metrics"
	"repro/internal/postings"
	"repro/internal/qdi"
	"repro/internal/storage"
	"repro/internal/transport"
)

// Scale selects experiment sizes: ScaleFull for the alvisbench binary,
// ScaleSmall for unit tests and the repository benchmarks.
type Scale int

const (
	// ScaleFull runs the experiment at report size.
	ScaleFull Scale = iota
	// ScaleSmall runs a reduced configuration with the same shape.
	ScaleSmall
)

func pick[T any](s Scale, full, small T) T {
	if s == ScaleSmall {
		return small
	}
	return full
}

// hdkConfigFor scales HDK parameters to a collection: DFmax well below
// the head DFs so expansion triggers, TruncK at the paper's order of
// magnitude relative to the collection.
func hdkConfigFor(numDocs int) hdk.Config {
	dfmax := numDocs / 20
	if dfmax < 10 {
		dfmax = 10
	}
	trunc := numDocs / 40
	if trunc < 10 {
		trunc = 10
	}
	return hdk.Config{DFMax: dfmax, SMax: 3, Window: 30, TruncK: trunc}
}

func corpusFor(numDocs int, seed int64) *corpus.Collection {
	return corpus.Generate(corpus.Params{
		NumDocs:    numDocs,
		VocabSize:  numDocs, // Heaps-like growth keeps the DF shape realistic
		MeanDocLen: 60,
		NumTopics:  20,
		Seed:       seed,
	})
}

// RunE1 measures per-query transferred bytes as the collection grows,
// for the single-term baseline [11], HDK, and warm QDI. The paper's
// claim: the baseline's traffic grows with the collection (its first
// shipped list is a *complete* posting list of a frequent term), while
// the key-based strategies stay bounded by the truncation constant.
// DFmax and TruncK are held constant across collection sizes — they are
// system constants, not per-collection tuning — and the workload is the
// problematic class from [11]: queries whose terms are all frequent.
// Result presentation (titles/snippets) is excluded from all systems'
// byte counts; only retrieval traffic is compared.
func RunE1(scale Scale) (*metrics.Table, error) {
	sizes := pick(scale, []int{2000, 4000, 8000, 16000}, []int{500, 1500})
	peers := pick(scale, 32, 8)
	numQueries := pick(scale, 100, 25)
	hdkCfg := hdk.Config{
		DFMax:  pick(scale, 250, 40),
		SMax:   3,
		Window: 30,
		TruncK: pick(scale, 250, 40),
	}

	t := metrics.NewTable(
		"E1: per-query retrieval traffic vs collection size (frequent-term queries)",
		"docs", "baseline B/q", "HDK B/q", "QDI warm B/q", "baseline/HDK",
	)
	// The query set is fixed across collection sizes: combinations of
	// head-of-Zipf terms, whose vocabulary ranks (and hence names) are
	// stable in the generator. This is [11]'s setting — the cost of the
	// same query as the collection grows.
	queries := headTermQueries(numQueries, pick(scale, 40, 25), 13)
	for _, size := range sizes {
		coll := corpusFor(size, 11)

		// Baseline network: full single-term lists + intersection shipping.
		baseNet := NewNetwork(Options{NumPeers: peers, Core: core.Config{HDK: hdkCfg}, Seed: 21})
		if err := baseNet.Distribute(coll); err != nil {
			return nil, err
		}
		if err := baseNet.PublishStats(); err != nil {
			return nil, err
		}
		if _, _, err := baseNet.PublishBaseline(); err != nil {
			return nil, err
		}
		baseBytes, err := measureBaselineQueries(baseNet, queries)
		if err != nil {
			return nil, err
		}

		// HDK network.
		hdkNet := NewNetwork(Options{NumPeers: peers, Core: core.Config{Strategy: core.StrategyHDK, HDK: hdkCfg}, Seed: 22})
		if err := hdkNet.Distribute(coll); err != nil {
			return nil, err
		}
		if err := hdkNet.PublishStats(); err != nil {
			return nil, err
		}
		if _, _, err := hdkNet.PublishHDK(); err != nil {
			return nil, err
		}
		hdkBytes, err := measureSearchQueries(hdkNet, queries)
		if err != nil {
			return nil, err
		}

		// QDI network, measured warm (second pass over the same queries).
		qdiNet := NewNetwork(Options{NumPeers: peers, Core: core.Config{
			Strategy: core.StrategyQDI, HDK: hdkCfg,
			QDI: qdi.Config{ActivateThreshold: 2, TruncK: hdkCfg.TruncK},
		}, Seed: 23})
		if err := qdiNet.Distribute(coll); err != nil {
			return nil, err
		}
		if err := qdiNet.PublishStats(); err != nil {
			return nil, err
		}
		if _, _, err := qdiNet.PublishHDK(); err != nil { // single terms only under QDI
			return nil, err
		}
		for pass := 0; pass < 3; pass++ { // warm-up passes trigger activation
			if _, err := measureSearchQueries(qdiNet, queries); err != nil {
				return nil, err
			}
		}
		qdiBytes, err := measureSearchQueries(qdiNet, queries)
		if err != nil {
			return nil, err
		}

		ratio := float64(baseBytes) / float64(max64(hdkBytes, 1))
		t.AddRow(size, baseBytes, hdkBytes, qdiBytes, ratio)
	}
	return t, nil
}

// headTermQueries builds 2–3-term queries from the head of the Zipf
// vocabulary (ranks < maxRank). Head terms appear in a constant fraction
// of the documents, so their posting lists grow linearly with the
// collection — the query class whose intersections make the single-term
// strategy unscalable [11]. Term names are rank-stable across generated
// collections, so the same query set is meaningful at every size.
func headTermQueries(count, maxRank int, seed int64) []corpus.Query {
	rng := rand.New(rand.NewSource(seed))
	seenQ := map[string]bool{}
	var out []corpus.Query
	for tries := 0; tries < count*100 && len(out) < count; tries++ {
		n := 2 + rng.Intn(2)
		set := map[string]bool{}
		for len(set) < n {
			set[fmt.Sprintf("term%04d", rng.Intn(maxRank))] = true
		}
		terms := make([]string, 0, n)
		for t := range set {
			terms = append(terms, t)
		}
		q := corpus.Query{Terms: terms}
		key := q.Text()
		if seenQ[key] {
			continue
		}
		seenQ[key] = true
		out = append(out, q)
	}
	return out
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// measureBaselineQueries runs the intersection-shipping baseline for each
// query from a deterministic random peer and returns mean bytes/query.
func measureBaselineQueries(n *Network, queries []corpus.Query) (int64, error) {
	rng := rand.New(rand.NewSource(31))
	before := n.Net.Meter().Snapshot()
	for _, q := range queries {
		svc := n.Base[rng.Intn(len(n.Base))]
		if _, _, err := svc.Query(context.Background(), q.Terms); err != nil {
			return 0, err
		}
	}
	delta := n.Net.Meter().Snapshot().Sub(before)
	return delta.Bytes / int64(len(queries)), nil
}

// measureSearchQueries runs full engine searches and returns mean
// retrieval bytes/query. Presentation traffic (document titles and
// snippets, message type MsgDocInfo) is excluded: the baseline's Query
// has no presentation phase, and the paper's bandwidth claims concern
// posting-list transfers.
func measureSearchQueries(n *Network, queries []corpus.Query) (int64, error) {
	rng := rand.New(rand.NewSource(32))
	before := n.Net.Meter().Snapshot()
	for _, q := range queries {
		p := n.RandomPeer(rng)
		if _, err := p.Search(context.Background(), q.Text()); err != nil {
			return 0, err
		}
	}
	delta := n.Net.Meter().Snapshot().Sub(before)
	bytes := delta.Bytes - delta.PerType[core.MsgDocInfo].Bytes
	return bytes / int64(len(queries)), nil
}

// RunE2 measures global-index storage under HDK across DFmax and smax —
// the "number of indexing term combinations remains scalable" claim.
func RunE2(scale Scale) (*metrics.Table, error) {
	numDocs := pick(scale, 8000, 800)
	peers := pick(scale, 32, 8)
	dfmaxes := pick(scale, []int{200, 400, 800}, []int{20, 40})
	smaxes := []int{2, 3}

	t := metrics.NewTable(
		fmt.Sprintf("E2: HDK index storage (%d docs, %d peers)", numDocs, peers),
		"DFmax", "smax", "keys", "multi-term keys", "postings", "stored bytes", "keys/doc",
	)
	coll := corpusFor(numDocs, 41)
	for _, dfmax := range dfmaxes {
		for _, smax := range smaxes {
			cfg := hdkConfigFor(numDocs)
			cfg.DFMax = dfmax
			cfg.SMax = smax
			n := NewNetwork(Options{NumPeers: peers, Core: core.Config{HDK: cfg}, Seed: 42})
			if err := n.Distribute(coll); err != nil {
				return nil, err
			}
			if err := n.PublishStats(); err != nil {
				return nil, err
			}
			if _, _, err := n.PublishHDK(); err != nil {
				return nil, err
			}
			keys, postingsStored, bytes := n.IndexStorage()
			multi := n.multiTermKeyCount()
			t.AddRow(dfmax, smax, keys, multi, postingsStored,
				metrics.HumanBytes(int64(bytes)), float64(keys)/float64(numDocs))
		}
	}
	return t, nil
}

func (n *Network) multiTermKeyCount() int {
	count := 0
	for _, p := range n.Peers {
		for _, k := range p.GlobalIndex().Store().Keys() {
			if strings.Contains(k, " ") {
				count++
			}
		}
	}
	return count
}

// RunE3 measures retrieval quality (overlap with the centralized BM25
// top-k) for HDK and warm QDI — the "retrieval quality fully comparable
// to state-of-the-art centralized search engines" claim.
func RunE3(scale Scale) (*metrics.Table, error) {
	numDocs := pick(scale, 8000, 800)
	peers := pick(scale, 32, 8)
	numQueries := pick(scale, 200, 40)

	hdkCfg := hdkConfigFor(numDocs)
	coll := corpusFor(numDocs, 51)
	w := corpus.GenerateWorkload(coll, corpus.WorkloadParams{NumQueries: numQueries, MaxTerms: 3, Seed: 53})

	t := metrics.NewTable(
		fmt.Sprintf("E3: retrieval quality vs centralized BM25 (%d docs, %d queries)", numDocs, len(w.Queries)),
		"system", "overlap@10", "overlap@20", "answered",
	)

	build := func(strategy core.Strategy, seed int64) (*Network, error) {
		cfg := core.Config{Strategy: strategy, HDK: hdkCfg,
			QDI: qdi.Config{ActivateThreshold: 2, TruncK: hdkCfg.TruncK}}
		n := NewNetwork(Options{NumPeers: peers, Core: cfg, Seed: seed})
		if err := n.Distribute(coll); err != nil {
			return nil, err
		}
		if err := n.PublishStats(); err != nil {
			return nil, err
		}
		if _, _, err := n.PublishHDK(); err != nil {
			return nil, err
		}
		return n, nil
	}

	evaluate := func(n *Network) (o10, o20, answered float64, err error) {
		rng := rand.New(rand.NewSource(55))
		for _, q := range w.Queries {
			got, _, err := n.SearchCorpusDocs(n.RandomPeer(rng), q.Text())
			if err != nil {
				return 0, 0, 0, err
			}
			if len(got) > 0 {
				answered++
			}
			o10 += OverlapAtK(got, n.CentralTopK(q.Text(), 10), 10)
			o20 += OverlapAtK(got, n.CentralTopK(q.Text(), 20), 20)
		}
		nq := float64(len(w.Queries))
		return o10 / nq, o20 / nq, answered / nq, nil
	}

	hdkNet, err := build(core.StrategyHDK, 61)
	if err != nil {
		return nil, err
	}
	o10, o20, ans, err := evaluate(hdkNet)
	if err != nil {
		return nil, err
	}
	t.AddRow("HDK", o10, o20, ans)

	qdiNet, err := build(core.StrategyQDI, 62)
	if err != nil {
		return nil, err
	}
	// Cold pass.
	o10c, o20c, ansc, err := evaluate(qdiNet)
	if err != nil {
		return nil, err
	}
	t.AddRow("QDI cold", o10c, o20c, ansc)
	// Two more passes let popular combinations activate; measure warm.
	if _, _, _, err := evaluate(qdiNet); err != nil {
		return nil, err
	}
	o10w, o20w, answ, err := evaluate(qdiNet)
	if err != nil {
		return nil, err
	}
	t.AddRow("QDI warm", o10w, o20w, answ)
	return t, nil
}

// RunE4 traces QDI's adaptivity over a query stream with a mid-stream
// popularity shift: index size, hit rate, activations and evictions per
// slice — "an efficient indexing structure adaptive to the current query
// popularity distribution".
func RunE4(scale Scale) (*metrics.Table, error) {
	numDocs := pick(scale, 4000, 600)
	peers := pick(scale, 16, 8)
	slices := 10
	sliceLen := pick(scale, 300, 80)

	hdkCfg := hdkConfigFor(numDocs)
	coll := corpusFor(numDocs, 71)
	wA := corpus.GenerateWorkload(coll, corpus.WorkloadParams{NumQueries: 60, MaxTerms: 3, Seed: 72})
	wB := corpus.GenerateWorkload(coll, corpus.WorkloadParams{NumQueries: 60, MaxTerms: 3, Seed: 973})

	n := NewNetwork(Options{NumPeers: peers, Core: core.Config{
		Strategy: core.StrategyQDI, HDK: hdkCfg,
		QDI: qdi.Config{ActivateThreshold: 3, EvictThreshold: 0.5, DecayFactor: 0.6, TruncK: hdkCfg.TruncK},
	}, Seed: 73})
	if err := n.Distribute(coll); err != nil {
		return nil, err
	}
	if err := n.PublishStats(); err != nil {
		return nil, err
	}
	if _, _, err := n.PublishHDK(); err != nil {
		return nil, err
	}

	t := metrics.NewTable(
		fmt.Sprintf("E4: QDI adaptivity (%d-query slices; workload shift after slice %d)", sliceLen, slices/2),
		"slice", "workload", "hit rate", "multi-term keys", "activated", "evicted",
	)
	rng := rand.New(rand.NewSource(74))
	totalActivated, totalEvicted := 0, 0
	for s := 1; s <= slices; s++ {
		w := wA
		label := "A"
		if s > slices/2 {
			w = wB
			label = "B"
		}
		stream := w.Stream(sliceLen, int64(700+s))
		hits, multiQ := 0, 0
		for _, q := range stream {
			if len(q.Terms) < 2 {
				continue
			}
			multiQ++
			resp, err := n.RandomPeer(rng).Search(context.Background(), q.Text())
			if err != nil {
				return nil, err
			}
			trace := resp.Trace
			if trace.FullHit {
				hits++
			}
			totalActivated += trace.Activated
		}
		for _, p := range n.Peers {
			totalEvicted += p.QDI().MaintenanceTick()
		}
		hitRate := 0.0
		if multiQ > 0 {
			hitRate = float64(hits) / float64(multiQ)
		}
		t.AddRow(s, label, hitRate, n.multiTermKeyCount(), totalActivated, totalEvicted)
	}
	return t, nil
}

// RunE5 measures routing cost across network sizes, ID distributions and
// finger policies — the L2 claims: O(log n) hops, skew tolerance with
// hop-space tables.
func RunE5(scale Scale) (*metrics.Table, error) {
	sizes := pick(scale, []int{64, 256, 1024, 4096}, []int{64, 256})
	lookups := pick(scale, 500, 200)

	t := metrics.NewTable(
		"E5: lookup hops by network size, ID distribution and finger policy",
		"peers", "distribution", "policy", "mean hops", "p99 hops", "mean table size",
	)
	for _, size := range sizes {
		for _, skewed := range []bool{false, true} {
			for _, policy := range []dht.FingerPolicy{dht.PolicyHopSpace, dht.PolicyIDSpace} {
				mean, p99, table := routingTrial(size, skewed, policy, lookups)
				dist := "uniform"
				if skewed {
					dist = "skewed"
				}
				t.AddRow(size, dist, policy.String(), mean, p99, table)
			}
		}
	}
	return t, nil
}

func routingTrial(size int, skewed bool, policy dht.FingerPolicy, lookups int) (mean float64, p99 int, tableSize float64) {
	net := transport.NewMem()
	rng := rand.New(rand.NewSource(81))
	nodes := make([]*dht.Node, size)
	makeID := func() ids.ID {
		if skewed {
			denseStart := uint64(float64(^uint64(0)) * 0.999)
			if rng.Float64() < 0.9 {
				return ids.ID(denseStart + rng.Uint64()%(^uint64(0)-denseStart))
			}
			return ids.ID(rng.Uint64() % denseStart)
		}
		return ids.ID(rng.Uint64())
	}
	for i := range nodes {
		d := transport.NewDispatcher()
		ep := net.Endpoint(fmt.Sprintf("r%d", i), d.Serve)
		nodes[i] = dht.NewNode(makeID(), ep, d, dht.Options{Policy: policy})
	}
	dht.BuildOracleTables(nodes)

	hist := metrics.NewHistogram()
	var tableSum int
	for _, n := range nodes {
		tableSum += len(n.Fingers())
	}
	for i := 0; i < lookups; i++ {
		var key ids.ID
		if skewed {
			key = makeID() // keys skew with the population (order-preserving hashing scenario)
		} else {
			key = ids.ID(rng.Uint64())
		}
		src := nodes[rng.Intn(size)]
		_, hops, err := src.Lookup(context.Background(), key)
		if err != nil {
			continue
		}
		hist.Add(hops)
	}
	return hist.Mean(), hist.Percentile(99), float64(tableSum) / float64(size)
}

// RunE6 runs the congestion-control load sweep — goodput with and
// without the hop-by-hop scheme, the "prevents congestion collapses"
// claim.
func RunE6(scale Scale) (*metrics.Table, error) {
	p := congestion.Params{
		NumPeers: pick(scale, 256, 64),
		Duration: pick(scale, 20.0, 5.0),
	}
	steps := pick(scale, 8, 4)
	withCC, withoutCC := congestion.Sweep(p, 0.25, 4, steps)

	t := metrics.NewTable(
		fmt.Sprintf("E6: goodput under load (%d peers, %d hops/query, capacity %.0f msg/s/peer)",
			pick(scale, 256, 64), 6, 100.0),
		"offered q/s", "goodput CC", "goodput no-CC", "shed CC", "dropped no-CC", "retries no-CC",
	)
	for i := range withCC {
		t.AddRow(
			int(withCC[i].Offered),
			int(withCC[i].Goodput),
			int(withoutCC[i].Goodput),
			fmt.Sprintf("%.1f%%", withCC[i].ShedRate*100),
			fmt.Sprintf("%.1f%%", withoutCC[i].DropRate*100),
			withoutCC[i].Retries,
		)
	}
	return t, nil
}

// RunE7 measures lattice exploration cost and quality by query length,
// with and without the truncated-hit pruning approximation — §2's
// "improve load balancing with an only marginal loss in retrieval
// precision".
func RunE7(scale Scale) (*metrics.Table, error) {
	numDocs := pick(scale, 4000, 600)
	peers := pick(scale, 16, 8)
	perLength := pick(scale, 40, 10)
	maxLen := pick(scale, 5, 4)

	hdkCfg := hdkConfigFor(numDocs)
	coll := corpusFor(numDocs, 91)

	build := func(pruneOff bool) (*Network, error) {
		n := NewNetwork(Options{NumPeers: peers, Core: core.Config{
			HDK: hdkCfg, PruneTruncatedOff: pruneOff,
		}, Seed: 92})
		if err := n.Distribute(coll); err != nil {
			return nil, err
		}
		if err := n.PublishStats(); err != nil {
			return nil, err
		}
		if _, _, err := n.PublishHDK(); err != nil {
			return nil, err
		}
		return n, nil
	}
	pruned, err := build(false)
	if err != nil {
		return nil, err
	}
	unpruned, err := build(true)
	if err != nil {
		return nil, err
	}

	t := metrics.NewTable(
		fmt.Sprintf("E7: lattice cost & precision by query length (%d docs)", numDocs),
		"terms", "probes (pruned)", "probes (full)", "overlap@10 (pruned)", "overlap@10 (full)",
	)
	for length := 1; length <= maxLen; length++ {
		queries := fixedLengthQueries(coll, length, perLength, int64(900+length))
		if len(queries) == 0 {
			continue
		}
		pProbes, pOver, err := latticeTrial(pruned, queries)
		if err != nil {
			return nil, err
		}
		uProbes, uOver, err := latticeTrial(unpruned, queries)
		if err != nil {
			return nil, err
		}
		t.AddRow(length, pProbes, uProbes, pOver, uOver)
	}
	return t, nil
}

// fixedLengthQueries samples queries with exactly `length` distinct terms
// co-occurring in some document.
func fixedLengthQueries(c *corpus.Collection, length, count int, seed int64) []corpus.Query {
	rng := rand.New(rand.NewSource(seed))
	seen := map[string]bool{}
	var out []corpus.Query
	for tries := 0; tries < count*50 && len(out) < count; tries++ {
		doc := c.Docs[rng.Intn(len(c.Docs))]
		words := strings.Fields(doc.Body)
		set := map[string]bool{}
		for i := 0; i < 8*length && len(set) < length; i++ {
			set[words[rng.Intn(len(words))]] = true
		}
		if len(set) != length {
			continue
		}
		terms := make([]string, 0, length)
		for t := range set {
			terms = append(terms, t)
		}
		q := corpus.Query{Terms: terms}
		key := q.Text()
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, q)
	}
	return out
}

func latticeTrial(n *Network, queries []corpus.Query) (meanProbes, meanOverlap float64, err error) {
	rng := rand.New(rand.NewSource(95))
	var probes, overlap float64
	for _, q := range queries {
		got, trace, err := n.SearchCorpusDocs(n.RandomPeer(rng), q.Text())
		if err != nil {
			return 0, 0, err
		}
		probes += float64(trace.Probes)
		overlap += OverlapAtK(got, n.CentralTopK(q.Text(), 10), 10)
	}
	nq := float64(len(queries))
	return probes / nq, overlap / nq, nil
}

// RunE8 measures the cost of distributed indexing itself: messages and
// bytes shipped per document for the statistics phase, the HDK key
// publishing, and the single-term baseline publishing.
func RunE8(scale Scale) (*metrics.Table, error) {
	numDocs := pick(scale, 4000, 600)
	peers := pick(scale, 16, 8)
	hdkCfg := hdkConfigFor(numDocs)
	coll := corpusFor(numDocs, 101)

	t := metrics.NewTable(
		fmt.Sprintf("E8: indexing cost (%d docs, %d peers)", numDocs, peers),
		"phase", "messages", "bytes", "bytes/doc", "wall time",
	)

	// HDK network: stats then keys.
	n := NewNetwork(Options{NumPeers: peers, Core: core.Config{HDK: hdkCfg}, Seed: 102})
	if err := n.Distribute(coll); err != nil {
		return nil, err
	}
	before := n.Net.Meter().Snapshot()
	start := time.Now()
	if err := n.PublishStats(); err != nil {
		return nil, err
	}
	statsDelta := n.Net.Meter().Snapshot().Sub(before)
	statsTime := time.Since(start)
	t.AddRow("statistics", statsDelta.Messages, metrics.HumanBytes(statsDelta.Bytes),
		statsDelta.Bytes/int64(numDocs), statsTime.Round(time.Millisecond).String())

	before = n.Net.Meter().Snapshot()
	start = time.Now()
	if _, _, err := n.PublishHDK(); err != nil {
		return nil, err
	}
	hdkDelta := n.Net.Meter().Snapshot().Sub(before)
	hdkTime := time.Since(start)
	t.AddRow("HDK keys", hdkDelta.Messages, metrics.HumanBytes(hdkDelta.Bytes),
		hdkDelta.Bytes/int64(numDocs), hdkTime.Round(time.Millisecond).String())

	// Baseline network for comparison.
	bn := NewNetwork(Options{NumPeers: peers, Core: core.Config{HDK: hdkCfg}, Seed: 103})
	if err := bn.Distribute(coll); err != nil {
		return nil, err
	}
	if err := bn.PublishStats(); err != nil {
		return nil, err
	}
	before = bn.Net.Meter().Snapshot()
	start = time.Now()
	if _, _, err := bn.PublishBaseline(); err != nil {
		return nil, err
	}
	baseDelta := bn.Net.Meter().Snapshot().Sub(before)
	baseTime := time.Since(start)
	t.AddRow("baseline full lists", baseDelta.Messages, metrics.HumanBytes(baseDelta.Bytes),
		baseDelta.Bytes/int64(numDocs), baseTime.Round(time.Millisecond).String())

	return t, nil
}

// RunE9 measures availability under churn: a query workload keeps
// running while 10% of the peers are killed and fresh peers join, with
// ReplicationFactor 1 (the single-copy index) vs 3. Reported per factor:
// the query success rate during the churn window (ring not yet repaired;
// reads must fall over to replicas) and after the ring settles, and the
// settled result recall against the pre-churn run. Documents hosted on
// killed peers are excluded from the recall reference — their loss is
// content going offline, not index damage, and no replication factor can
// recover them. The live-key columns count distinct index keys held by
// live peers: with R=1 a killed peer's slice vanishes and a joiner's
// range goes dark, with R=3 replicas keep every key reachable.
func RunE9(scale Scale) (*metrics.Table, error) {
	numDocs := pick(scale, 4000, 600)
	peers := pick(scale, 30, 10)
	numQueries := pick(scale, 150, 40)
	joins := pick(scale, 3, 1)

	hdkCfg := hdkConfigFor(numDocs)
	coll := corpusFor(numDocs, 121)
	w := corpus.GenerateWorkload(coll, corpus.WorkloadParams{NumQueries: numQueries, MaxTerms: 3, Seed: 123})

	kill := (peers + 9) / 10
	t := metrics.NewTable(
		fmt.Sprintf("E9: availability under churn (%d peers, kill %d, join %d, %d queries)",
			peers, kill, joins, len(w.Queries)),
		"factor", "success churn", "success settled", "recall settled", "live keys before", "live keys after",
	)
	for _, factor := range []int{1, 3} {
		sc, ss, rec, kb, ka, err := churnTrial(coll, w.Queries, peers, kill, joins, factor, hdkCfg)
		if err != nil {
			return nil, err
		}
		t.AddRow(factor, sc, ss, rec, kb, ka)
	}
	return t, nil
}

// churnTrial runs one E9 configuration and returns the churn-window and
// settled success rates, the settled recall, and the distinct live-key
// counts before and after the churn.
func churnTrial(coll *corpus.Collection, queries []corpus.Query, peers, kill, joins, factor int, hdkCfg hdk.Config) (succChurn, succSettled, recall float64, keysBefore, keysAfter int, err error) {
	n := NewNetwork(Options{NumPeers: peers, Core: core.Config{
		HDK: hdkCfg, ReplicationFactor: factor,
	}, Seed: 124})
	if err := n.Distribute(coll); err != nil {
		return 0, 0, 0, 0, 0, err
	}
	if err := n.PublishStats(); err != nil {
		return 0, 0, 0, 0, 0, err
	}
	if _, _, err := n.PublishHDK(); err != nil {
		return 0, 0, 0, 0, 0, err
	}

	rng := rand.New(rand.NewSource(125))
	live := append([]*core.Peer(nil), n.Peers...)
	pickPeer := func() *core.Peer { return live[rng.Intn(len(live))] }

	// Pre-churn reference pass.
	expected := make([][]int, len(queries))
	for qi, q := range queries {
		got, _, err := n.SearchCorpusDocs(pickPeer(), q.Text())
		if err != nil {
			return 0, 0, 0, 0, 0, fmt.Errorf("pre-churn query %d: %w", qi, err)
		}
		expected[qi] = got
	}
	keysBefore = distinctKeys(live)

	// Kill 10% of the peers mid-workload.
	killedIdx := map[int]bool{}
	for len(killedIdx) < kill {
		killedIdx[rng.Intn(len(n.Peers))] = true
	}
	killedAddr := map[transport.Addr]bool{}
	for i := range killedIdx {
		killedAddr[n.Peers[i].Addr()] = true
		n.Net.SetDown(n.Peers[i].Addr(), true)
	}
	live = live[:0]
	for i, p := range n.Peers {
		if !killedIdx[i] {
			live = append(live, p)
		}
	}
	deadDoc := make([]bool, len(n.RefOf))
	for i, ref := range n.RefOf {
		deadDoc[i] = killedAddr[ref.Peer]
	}

	// Churn window: the workload keeps running while periodic maintenance
	// repairs the ring in the background (one sweep every few queries).
	okChurn := 0
	for qi, q := range queries {
		if qi%4 == 0 {
			for _, p := range live {
				p.Maintain(context.Background())
			}
		}
		if _, _, err := n.SearchCorpusDocs(pickPeer(), q.Text()); err == nil {
			okChurn++
		}
	}
	succChurn = float64(okChurn) / float64(len(queries))

	// Fresh peers join mid-workload and take over key ranges.
	for j := 0; j < joins; j++ {
		p, err := n.AddPeer(fmt.Sprintf("late%d", j), ids.ID(rng.Uint64()), live[0].Addr())
		if err != nil {
			return 0, 0, 0, 0, 0, fmt.Errorf("join %d: %w", j, err)
		}
		live = append(live, p)
		for r := 0; r < 4; r++ {
			for _, q := range live {
				q.Maintain(context.Background())
			}
		}
	}
	for r := 0; r < 6; r++ {
		for _, p := range live {
			p.Maintain(context.Background())
		}
	}

	// Settled pass: success and recall against the pre-churn reference
	// minus the offline documents.
	okSettled, recSum, recN := 0, 0.0, 0
	for qi, q := range queries {
		got, _, err := n.SearchCorpusDocs(pickPeer(), q.Text())
		if err == nil {
			okSettled++
		}
		var exp []int
		for _, d := range expected[qi] {
			if !deadDoc[d] {
				exp = append(exp, d)
			}
		}
		if len(exp) == 0 {
			continue
		}
		recN++
		if err != nil {
			continue // a failed query recalls nothing
		}
		gotSet := make(map[int]bool, len(got))
		for _, d := range got {
			gotSet[d] = true
		}
		hit := 0
		for _, d := range exp {
			if gotSet[d] {
				hit++
			}
		}
		recSum += float64(hit) / float64(len(exp))
	}
	succSettled = float64(okSettled) / float64(len(queries))
	if recN > 0 {
		recall = recSum / float64(recN)
	}
	keysAfter = distinctKeys(live)
	return succChurn, succSettled, recall, keysBefore, keysAfter, nil
}

// distinctKeys counts the distinct global-index keys held across peers.
func distinctKeys(peers []*core.Peer) int {
	seen := map[string]bool{}
	for _, p := range peers {
		for _, k := range p.GlobalIndex().Store().Keys() {
			seen[k] = true
		}
	}
	return len(seen)
}

// RunF1 reproduces Figure 1's worked example as a table: the probe/skip
// sequence for query {a,b,c} with bc indexed (truncated) and ab, ac
// absent.
func RunF1() (*metrics.Table, error) {
	// A minimal 4-peer network with exactly the figure's index state.
	n := NewNetwork(Options{NumPeers: 4, Seed: 111, Core: core.Config{}})
	put := func(terms []string, truncated bool, docs ...uint32) error {
		_, err := n.Peers[0].GlobalIndex().Put(context.Background(), terms, figureList(truncated, docs...), 0)
		return err
	}
	// Single terms are always indexed; b and c truncated, a complete.
	if err := put([]string{"figtermb", "figtermc"}, true, 10, 11); err != nil {
		return nil, err
	}
	if err := put([]string{"figterma"}, false, 1, 10); err != nil {
		return nil, err
	}
	if err := put([]string{"figtermb"}, true, 10, 11, 12); err != nil {
		return nil, err
	}
	if err := put([]string{"figtermc"}, true, 10, 13); err != nil {
		return nil, err
	}

	resp, err := n.Peers[1].Search(context.Background(), "figterma figtermb figtermc")
	if err != nil {
		return nil, err
	}
	results, trace := resp.Results, resp.Trace
	t := metrics.NewTable(
		"F1: lattice processing of query {a,b,c} (bc truncated-indexed; ab, ac absent)",
		"quantity", "value",
	)
	t.AddRow("probes issued", trace.Probes)
	t.AddRow("keys skipped", trace.Skipped)
	t.AddRow("result docs (union of bc and a)", len(results))
	return t, nil
}

func figureList(truncated bool, docIDs ...uint32) *postings.List {
	l := &postings.List{}
	for i, d := range docIDs {
		l.Add(postings.Posting{
			Ref:   postings.DocRef{Peer: "peer000", Doc: d},
			Score: float64(100 - i),
		})
	}
	l.Normalize()
	l.Truncated = truncated
	return l
}

// RunE10 measures the wasted-RPC reduction context cancellation buys: a
// query workload where 20% of the queries carry a 50ms deadline, over a
// network with simulated per-message latency, compared against the same
// subset running to completion. Before the context redesign a query
// could not be stopped once it left the facade, so every RPC of an
// abandoned query was paid in full; with cancellation the fan-out stops
// spawning work the moment the deadline passes.
func RunE10(scale Scale) (*metrics.Table, error) {
	numDocs := pick(scale, 4000, 600)
	peers := pick(scale, 16, 8)
	numQueries := pick(scale, 60, 25)
	latency := pick(scale, 20*time.Millisecond, 20*time.Millisecond)
	const deadline = 50 * time.Millisecond
	const cancelEvery = 5 // every 5th query = 20%

	// run builds a fresh network, publishes the corpus, then replays the
	// workload; queries at the cancel positions run under a deadline when
	// cancel is true. It returns the message count attributable to the
	// cancel-position queries.
	run := func(cancel bool) (subsetMsgs int64, timedOut int, err error) {
		n := NewNetwork(Options{NumPeers: peers, Seed: 91, Core: core.Config{
			Strategy: core.StrategyHDK,
			HDK:      hdkConfigFor(numDocs),
		}})
		coll := corpusFor(numDocs, 92)
		if err := n.Distribute(coll); err != nil {
			return 0, 0, err
		}
		if err := n.PublishStats(); err != nil {
			return 0, 0, err
		}
		if _, _, err := n.PublishHDK(); err != nil {
			return 0, 0, err
		}
		w := corpus.GenerateWorkload(coll, corpus.WorkloadParams{NumQueries: numQueries * 2, MaxTerms: 3, Seed: 93})
		var multi []corpus.Query
		for _, q := range w.Queries {
			if len(q.Terms) >= 2 { // single-term queries finish inside the deadline
				multi = append(multi, q)
			}
		}
		if len(multi) > numQueries {
			multi = multi[:numQueries]
		}
		// Latency starts after publication: only the query phase pays it.
		n.Net.SetLatency(latency)
		defer n.Net.SetLatency(0)
		rng := rand.New(rand.NewSource(94))
		for qi, q := range multi {
			p := n.RandomPeer(rng)
			atCancelPos := qi%cancelEvery == 0
			before := n.Net.Meter().Snapshot().Messages
			if cancel && atCancelPos {
				_, err := p.Search(context.Background(), q.Text(), core.WithTimeout(deadline))
				switch {
				case err == nil:
					// finished inside the deadline
				case errors.Is(err, core.ErrPartialResults) || errors.Is(err, core.ErrQueryCancelled):
					timedOut++
				default:
					return 0, 0, err
				}
			} else {
				if _, err := p.Search(context.Background(), q.Text()); err != nil {
					return 0, 0, err
				}
			}
			if atCancelPos {
				subsetMsgs += n.Net.Meter().Snapshot().Messages - before
			}
		}
		return subsetMsgs, timedOut, nil
	}

	fullMsgs, _, err := run(false)
	if err != nil {
		return nil, err
	}
	cancelMsgs, timedOut, err := run(true)
	if err != nil {
		return nil, err
	}
	saved := 0.0
	if fullMsgs > 0 {
		saved = 1 - float64(cancelMsgs)/float64(fullMsgs)
	}
	t := metrics.NewTable(
		fmt.Sprintf("E10: wasted RPCs under cancellation (%d peers, %s/msg latency, 20%% of queries deadlined at %s)",
			peers, latency, deadline),
		"mode", "RPCs on 20% subset", "deadlines hit", "RPCs saved",
	)
	t.AddRow("run-to-completion", fullMsgs, 0, "0%")
	t.AddRow("cancel@50ms", cancelMsgs, timedOut, fmt.Sprintf("%.0f%%", 100*saved))
	return t, nil
}

// ---------------------------------------------------------------------------
// E11: deadline-over-the-wire admission control + hedged replica reads.

// e11Params are the shared knobs of experiment E11's arms.
type e11Params struct {
	numDocs, peers, numQueries, numReads int
	slowDelay, hedgeDelay, deadline      time.Duration
}

func e11ParamsFor(scale Scale) e11Params {
	return e11Params{
		numDocs:    pick(scale, 2500, 500),
		peers:      pick(scale, 12, 8),
		numQueries: pick(scale, 50, 25),
		numReads:   pick(scale, 120, 60),
		slowDelay:  pick(scale, 120*time.Millisecond, 100*time.Millisecond),
		hedgeDelay: 15 * time.Millisecond,
		deadline:   40 * time.Millisecond,
	}
}

// buildE11Network builds a replicated (R=3) network over a published HDK
// index plus the multi-term query workload, and nominates the last peer
// as the one the arms will slow down. admission toggles server-side
// admission control on every peer (watermark 1, 2ms service floor).
func buildE11Network(p e11Params, admission bool) (*Network, transport.Addr, []corpus.Query, error) {
	cfg := core.Config{
		Strategy:          core.StrategyHDK,
		HDK:               hdkConfigFor(p.numDocs),
		ReplicationFactor: 3,
	}
	if admission {
		cfg.AdmissionWatermark = 1
		cfg.AdmissionMinService = 2 * time.Millisecond
	}
	n := NewNetwork(Options{NumPeers: p.peers, Seed: 111, Core: cfg})
	coll := corpusFor(p.numDocs, 112)
	if err := n.Distribute(coll); err != nil {
		return nil, "", nil, err
	}
	if err := n.PublishStats(); err != nil {
		return nil, "", nil, err
	}
	if _, _, err := n.PublishHDK(); err != nil {
		return nil, "", nil, err
	}
	w := corpus.GenerateWorkload(coll, corpus.WorkloadParams{NumQueries: p.numQueries * 3, MaxTerms: 3, Seed: 113})
	var multi []corpus.Query
	for _, q := range w.Queries {
		if len(q.Terms) >= 2 {
			multi = append(multi, q)
		}
	}
	if len(multi) > p.numQueries {
		multi = multi[:p.numQueries]
	}
	slow := n.Peers[p.peers-1].Addr()
	return n, slow, multi, nil
}

// runE11ShedArm replays the deadlined query workload (every 5th query
// carries the deadline, like E10) against the network with its slow peer
// active, and sums the admission counters over all peers: how many
// requests were shed before any work, and how many arrived with an
// already-expired budget but were executed anyway (the wasted work of a
// PR 3 style peer).
func runE11ShedArm(p e11Params, admission bool) (sheds, doomedExecuted int64, err error) {
	n, slow, queries, err := buildE11Network(p, admission)
	if err != nil {
		return 0, 0, err
	}
	n.Net.SetPeerDelay(slow, p.slowDelay)
	defer n.Net.SetPeerDelay(slow, 0)
	rng := rand.New(rand.NewSource(114))
	for qi, q := range queries {
		peer := n.RandomPeer(rng)
		if qi%5 == 0 {
			_, serr := peer.Search(context.Background(), q.Text(), core.WithTimeout(p.deadline))
			switch {
			case serr == nil,
				errors.Is(serr, core.ErrPartialResults),
				errors.Is(serr, core.ErrQueryCancelled):
				// Finished, or cut at the deadline — both expected.
			default:
				return 0, 0, serr
			}
		} else {
			if _, serr := peer.Search(context.Background(), q.Text()); serr != nil {
				return 0, 0, serr
			}
		}
	}
	for _, peer := range n.Peers {
		s, l := peer.Dispatcher().AdmissionStats()
		sheds += s
		doomedExecuted += l
	}
	return sheds, doomedExecuted, nil
}

// runE11ReadArm measures replica-read tail latency against the slow
// peer: numReads MultiGet batches of the workload's single-term keys
// under ReadAnyReplica, hedged or not, from one warm reader. Returned is
// the p99 wall time in milliseconds.
func runE11ReadArm(p e11Params, hedged bool) (p99ms int, err error) {
	n, slow, queries, err := buildE11Network(p, false)
	if err != nil {
		return 0, err
	}
	reader := n.Peers[0].GlobalIndex()
	itemsFor := func(q corpus.Query) []globalindex.GetItem {
		items := make([]globalindex.GetItem, len(q.Terms))
		for i, t := range q.Terms {
			items[i] = globalindex.GetItem{Terms: []string{t}, MaxResults: 10}
		}
		return items
	}
	// Warm pass (no slow peer yet): resolver routes and replica sets are
	// cached, as they would be on any steady-state peer.
	for _, q := range queries {
		if _, err := reader.MultiGet(context.Background(), itemsFor(q), 8, globalindex.ReadAnyReplica); err != nil {
			return 0, err
		}
	}
	n.Net.SetPeerDelay(slow, p.slowDelay)
	defer n.Net.SetPeerDelay(slow, 0)
	var opts []globalindex.ReadOption
	if hedged {
		opts = append(opts, globalindex.WithHedge(p.hedgeDelay))
	}
	hist := metrics.NewHistogram()
	for i := 0; i < p.numReads; i++ {
		q := queries[i%len(queries)]
		start := time.Now()
		if _, err := reader.MultiGet(context.Background(), itemsFor(q), 8, globalindex.ReadAnyReplica, opts...); err != nil {
			return 0, err
		}
		hist.Add(int(time.Since(start) / time.Millisecond))
	}
	return hist.Percentile(99), nil
}

// RunE11 measures what the deadline-over-the-wire machinery buys on a
// network with one slow, overloaded peer (the wasted-traffic-vs-latency
// tradeoff the paper motivates with hop-by-hop congestion control [2]):
//
//   - admission control: with 20% of queries deadlined at 40ms, a PR 3
//     style network (no admission) executes every request that reaches
//     the slow peer even after its budget expired — pure wasted work; an
//     admission-controlled network sheds those requests before the work,
//     so doomed executions drop (ideally to zero) while sheds > 0;
//   - hedged reads: AnyReplica reads whose hash-chosen copy is the slow
//     peer pay its full delay in the tail; hedged, load-aware reads race
//     the next-best copy after 15ms and learn to avoid the slow copy, so
//     read p99 falls well below the slow peer's delay.
func RunE11(scale Scale) (*metrics.Table, error) {
	p := e11ParamsFor(scale)
	shedsOff, doomedOff, err := runE11ShedArm(p, false)
	if err != nil {
		return nil, err
	}
	shedsOn, doomedOn, err := runE11ShedArm(p, true)
	if err != nil {
		return nil, err
	}
	p99Unhedged, err := runE11ReadArm(p, false)
	if err != nil {
		return nil, err
	}
	p99Hedged, err := runE11ReadArm(p, true)
	if err != nil {
		return nil, err
	}
	t := metrics.NewTable(
		fmt.Sprintf("E11: admission control + hedged reads (%d peers, 1 slow peer @ %s, 20%% of queries deadlined at %s, hedge %s)",
			p.peers, p.slowDelay, p.deadline, p.hedgeDelay),
		"quantity", "value",
	)
	t.AddRow("sheds, admission off (PR3)", shedsOff)
	t.AddRow("doomed requests executed, admission off (PR3)", doomedOff)
	t.AddRow("sheds, admission on", shedsOn)
	t.AddRow("doomed requests executed, admission on", doomedOn)
	t.AddRow("read p99 ms, any-replica unhedged", p99Unhedged)
	t.AddRow("read p99 ms, any-replica hedged", p99Hedged)
	return t, nil
}

// e12Trial runs one arm of the restart experiment: an R=3 network is
// published, a pre-kill reference pass is recorded, 20% of the peers
// are killed, the ring repairs while fresh keys keep being written into
// the dead peers' ranges, and the victims then restart — cold (memory
// engines, persistent=false) or from their durable WAL/snapshot state
// (persistent=true) — and rejoin. Returned: the full-entry transfers
// and manifest pairs the restarted peers' anti-entropy pulls moved,
// and the post-restart success and recall against the pre-kill
// reference.
func e12Trial(coll *corpus.Collection, queries []corpus.Query, peers, kill int, hdkCfg hdk.Config, persistent bool) (pulled, manifest int64, success, recall float64, err error) {
	ctx := context.Background()
	var root string
	var engines []globalindex.StorageEngine
	engineFor := func(i int) (globalindex.StorageEngine, error) {
		if !persistent {
			return nil, nil
		}
		return storage.Open(filepath.Join(root, fmt.Sprintf("peer%03d", i)), storage.Options{})
	}
	if persistent {
		root, err = os.MkdirTemp("", "alvis-e12-")
		if err != nil {
			return 0, 0, 0, 0, err
		}
		defer os.RemoveAll(root)
		for i := 0; i < peers; i++ {
			e, eerr := engineFor(i)
			if eerr != nil {
				return 0, 0, 0, 0, eerr
			}
			engines = append(engines, e)
		}
	}
	n := NewNetwork(Options{
		NumPeers: peers,
		Core:     core.Config{HDK: hdkCfg, ReplicationFactor: 3},
		Seed:     141,
		Engines:  engines,
	})
	defer func() {
		for _, p := range n.Peers {
			_ = p.Close()
		}
	}()
	if err := n.Distribute(coll); err != nil {
		return 0, 0, 0, 0, err
	}
	if err := n.PublishStats(); err != nil {
		return 0, 0, 0, 0, err
	}
	if _, _, err := n.PublishHDK(); err != nil {
		return 0, 0, 0, 0, err
	}

	// Pre-kill reference pass, issued from the never-killed peer 0.
	expected := make([][]int, len(queries))
	for qi, q := range queries {
		got, _, err := n.SearchCorpusDocs(n.Peers[0], q.Text())
		if err != nil {
			return 0, 0, 0, 0, fmt.Errorf("pre-kill query %d: %w", qi, err)
		}
		expected[qi] = got
	}

	// Kill 20% of the peers (peer 0 stays: it bootstraps the rejoins).
	rng := rand.New(rand.NewSource(142))
	victims := map[int]bool{}
	for len(victims) < kill {
		victims[1+rng.Intn(peers-1)] = true
	}
	for v := range victims {
		n.KillPeer(v)
	}
	live := n.Peers[:0:0]
	for i, p := range n.Peers {
		if !victims[i] {
			live = append(live, p)
		}
	}

	// The ring repairs around the dead peers...
	for r := 0; r < 8; r++ {
		for _, p := range live {
			p.Maintain(ctx)
		}
	}
	// ...and the workload keeps writing: fresh keys land in the dead
	// peers' old ranges (their promoted successors hold them now). These
	// are exactly the writes a restarted peer missed — what the delta
	// rejoin must transfer, and all it should transfer.
	fresh := &postings.List{}
	fresh.Add(postings.Posting{Ref: postings.DocRef{Peer: n.Peers[0].Addr(), Doc: 1}, Score: 1})
	for i := 0; i < 60; i++ {
		if _, err := n.Peers[0].GlobalIndex().Put(ctx, []string{fmt.Sprintf("e12fresh%04d", i)}, fresh, 10); err != nil {
			return 0, 0, 0, 0, fmt.Errorf("mid-downtime write %d: %w", i, err)
		}
	}

	// Restart every victim and let the ring settle.
	for v := range victims {
		eng, eerr := engineFor(v)
		if eerr != nil {
			return 0, 0, 0, 0, eerr
		}
		if _, err := n.RestartPeer(ctx, v, eng, n.Peers[0].Addr()); err != nil {
			return 0, 0, 0, 0, fmt.Errorf("restart peer %d: %w", v, err)
		}
		for r := 0; r < 4; r++ {
			for _, p := range n.Peers {
				p.Maintain(ctx)
			}
		}
	}
	for r := 0; r < 6; r++ {
		for _, p := range n.Peers {
			p.Maintain(ctx)
		}
	}
	for v := range victims {
		m, pl := n.Peers[v].GlobalIndex().PullTransferCounts()
		manifest += m
		pulled += pl
	}

	// Post-restart pass: success and recall against the pre-kill
	// reference (every document is back online, so no exclusions).
	ok, recSum, recN := 0, 0.0, 0
	for qi, q := range queries {
		got, _, err := n.SearchCorpusDocs(n.Peers[0], q.Text())
		if err == nil {
			ok++
		}
		if len(expected[qi]) == 0 {
			continue
		}
		recN++
		if err != nil {
			continue
		}
		gotSet := make(map[int]bool, len(got))
		for _, d := range got {
			gotSet[d] = true
		}
		hit := 0
		for _, d := range expected[qi] {
			if gotSet[d] {
				hit++
			}
		}
		recSum += float64(hit) / float64(len(expected[qi]))
	}
	success, recall = 1, 1 // a query-less trial (the transfer benchmark) is vacuously perfect
	if len(queries) > 0 {
		success = float64(ok) / float64(len(queries))
	}
	if recN > 0 {
		recall = recSum / float64(recN)
	}
	return pulled, manifest, success, recall, nil
}

// RunE12 measures what durable storage buys a restarting peer: 20% of
// an R=3 network is killed and restarted mid-workload, once with plain
// in-memory engines (cold rejoin: the whole owned range re-transfers)
// and once with WAL+snapshot persistence (delta rejoin: the recovered
// slice is diffed by fingerprint manifest and only the writes missed
// during the downtime transfer). Retrieval quality must be unaffected
// in both arms — replication already covers the downtime window — so
// the delta column is pure bandwidth savings.
func RunE12(scale Scale) (*metrics.Table, error) {
	numDocs := pick(scale, 4000, 600)
	peers := pick(scale, 20, 10)
	numQueries := pick(scale, 100, 30)
	kill := (peers + 4) / 5

	hdkCfg := hdkConfigFor(numDocs)
	coll := corpusFor(numDocs, 131)
	w := corpus.GenerateWorkload(coll, corpus.WorkloadParams{NumQueries: numQueries, MaxTerms: 3, Seed: 133})

	t := metrics.NewTable(
		fmt.Sprintf("E12: restart recovery (%d peers, R=3, kill+restart %d, %d queries)",
			peers, kill, len(w.Queries)),
		"engine", "keys transferred", "manifest pairs", "success", "recall",
	)
	for _, persistent := range []bool{false, true} {
		pulled, manifest, success, recall, err := e12Trial(coll, w.Queries, peers, kill, hdkCfg, persistent)
		if err != nil {
			return nil, err
		}
		name := "memory (cold rejoin)"
		if persistent {
			name = "persistent (delta rejoin)"
		}
		t.AddRow(name, pulled, manifest, success, recall)
	}
	return t, nil
}

// e13Queries builds the E13 workload: mostly single head-of-Zipf terms
// — the queries whose stored lists are long (DF far above TruncK, so
// the index holds a full TruncK-length truncated list) and where
// full-pull transfer is dominated by the tail a top-10 query never
// needs — plus a fraction of two-term head pairs exercising the
// multi-key threshold loop.
func e13Queries(count, maxRank int, seed int64) []corpus.Query {
	rng := rand.New(rand.NewSource(seed))
	seenQ := map[string]bool{}
	// Pair terms come from the very head of the Zipf curve, where single
	// lists exceed TruncK and are stored truncated: QDI's redundancy rule
	// (an untruncated sub-combination answers the query exactly) would
	// otherwise veto activating any pair containing a mid-rank term.
	pairRank := maxRank / 4
	if pairRank < 2 {
		pairRank = 2
	}
	var out []corpus.Query
	for tries := 0; tries < count*100 && len(out) < count; tries++ {
		n, rank := 1, maxRank
		if rng.Float64() < 0.25 {
			n, rank = 2, pairRank
		}
		set := map[string]bool{}
		for len(set) < n {
			set[fmt.Sprintf("term%04d", rng.Intn(rank))] = true
		}
		terms := make([]string, 0, n)
		for t := range set {
			terms = append(terms, t)
		}
		q := corpus.Query{Terms: terms}
		if seenQ[q.Text()] {
			continue
		}
		seenQ[q.Text()] = true
		out = append(out, q)
	}
	return out
}

// e13TopSet is one query's result set as one arm saw it: the scored
// refs plus the k-th (last) score, for tie-aware comparison.
type e13TopSet struct {
	scores   map[postings.DocRef]float64
	boundary float64
}

// e13SameTop reports whether two arms' top-k sets agree modulo ties at
// the k-th score: a document present in only one set must score within
// the quantization tolerance of that arm's own boundary — exactly the
// documents where either resolution is a correct top k.
func e13SameTop(a, b e13TopSet) bool {
	tol := func(s float64) float64 {
		if s < 1 {
			s = 1
		}
		return 1e-4 * s
	}
	for ref, sc := range a.scores {
		if _, ok := b.scores[ref]; !ok && sc > a.boundary+tol(a.boundary) {
			return false
		}
	}
	for ref, sc := range b.scores {
		if _, ok := a.scores[ref]; !ok && sc > b.boundary+tol(b.boundary) {
			return false
		}
	}
	return true
}

// e13Arm runs one measured pass of the E13 queries with streaming on or
// off and returns mean retrieval bytes/query (presentation excluded, as
// in measureSearchQueries) plus each query's top-k result set. Both arms
// run with the HDK strategy override so QDI activation cannot mutate
// index state between them, and with the same query→peer assignment.
func e13Arm(n *Network, queries []corpus.Query, streaming bool) (int64, []e13TopSet, error) {
	rng := rand.New(rand.NewSource(34))
	before := n.Net.Meter().Snapshot()
	sets := make([]e13TopSet, len(queries))
	for i, q := range queries {
		p := n.RandomPeer(rng)
		resp, err := p.Search(context.Background(), q.Text(),
			core.WithStrategy(core.StrategyHDK), core.WithStreaming(streaming))
		if err != nil {
			return 0, nil, err
		}
		set := e13TopSet{scores: make(map[postings.DocRef]float64, len(resp.Results))}
		for _, r := range resp.Results {
			set.scores[r.Ref] = r.Score
		}
		if len(resp.Results) > 0 {
			set.boundary = resp.Results[len(resp.Results)-1].Score
		}
		sets[i] = set
	}
	delta := n.Net.Meter().Snapshot().Sub(before)
	bytes := delta.Bytes - delta.PerType[core.MsgDocInfo].Bytes
	return bytes / int64(len(queries)), sets, nil
}

// topkCounters sums the coordinator-side streamed-read telemetry across
// every peer of the network.
func topkCounters(n *Network) (rounds, early, saved float64) {
	for _, p := range n.Peers {
		for _, f := range p.Telemetry().Gather() {
			var sum float64
			for _, s := range f.Samples {
				sum += s.Value
			}
			switch f.Name {
			case "alvis_index_topk_rounds_total":
				rounds += sum
			case "alvis_index_topk_early_terminations_total":
				early += sum
			case "alvis_index_topk_bytes_saved_total":
				saved += sum
			}
		}
	}
	return rounds, early, saved
}

// RunE13 measures the streamed score-bounded top-k read path against
// classic full-list pulls on a zipf(1.0) collection — the exponent of
// real web text, below math/rand's sampler floor, exercising the
// corpus package's inverse-CDF sampler. Each strategy arm (HDK, and QDI
// warmed by three activation passes) runs the same frequent-term query
// mix twice over identical index state: once with one-shot full pulls,
// once streamed (score-sorted prefixes, threshold-test continuation,
// compressed chunks). The claim: streamed retrieval moves a fraction of
// the bytes — the acceptance floor is 5x — while returning the same
// top-10 result set for every query.
func RunE13(scale Scale) (*metrics.Table, error) {
	numDocs := pick(scale, 6000, 700)
	peers := pick(scale, 24, 8)
	numQueries := pick(scale, 120, 25)
	const k = 10

	hdkCfg := hdkConfigFor(numDocs)
	hdkCfg.TruncK = pick(scale, 600, 300)
	coll := corpus.Generate(corpus.Params{
		NumDocs:    numDocs,
		VocabSize:  numDocs,
		ZipfS:      1.0,
		MeanDocLen: 60,
		NumTopics:  20,
		Seed:       137,
	})
	queries := e13Queries(numQueries, pick(scale, 60, 30), 139)

	t := metrics.NewTable(
		fmt.Sprintf("E13: streamed top-%d vs full pulls (zipf(1.0), %d docs, %d peers, %d queries)",
			k, numDocs, peers, len(queries)),
		"strategy", "full B/q", "streamed B/q", "ratio", "identical@10", "rounds/q", "early-term frac",
	)
	for _, strat := range []core.Strategy{core.StrategyHDK, core.StrategyQDI} {
		cfg := core.Config{Strategy: strat, HDK: hdkCfg, TopK: k}
		if strat == core.StrategyQDI {
			cfg.QDI = qdi.Config{ActivateThreshold: 2, TruncK: hdkCfg.TruncK}
		}
		n := NewNetwork(Options{NumPeers: peers, Core: cfg, Seed: 141})
		if err := n.Distribute(coll); err != nil {
			return nil, err
		}
		if err := n.PublishStats(); err != nil {
			return nil, err
		}
		if _, _, err := n.PublishHDK(); err != nil { // single terms only under QDI
			return nil, err
		}
		if strat == core.StrategyQDI {
			for pass := 0; pass < 3; pass++ { // warm-up passes trigger activation
				if _, err := measureSearchQueries(n, queries); err != nil {
					return nil, err
				}
			}
		}
		fullBytes, fullSets, err := e13Arm(n, queries, false)
		if err != nil {
			return nil, err
		}
		rounds0, early0, _ := topkCounters(n)
		streamBytes, streamSets, err := e13Arm(n, queries, true)
		if err != nil {
			return nil, err
		}
		rounds1, early1, _ := topkCounters(n)

		identical := 0
		for i := range fullSets {
			if e13SameTop(fullSets[i], streamSets[i]) {
				identical++
			}
		}
		name := "HDK"
		if strat == core.StrategyQDI {
			name = "QDI warm"
		}
		nq := float64(len(queries))
		t.AddRow(name, fullBytes, streamBytes,
			float64(fullBytes)/float64(max64(streamBytes, 1)),
			float64(identical)/nq,
			(rounds1-rounds0)/nq,
			(early1-early0)/nq,
		)
	}
	return t, nil
}

// e14Counters sums the hot-key read-path telemetry across every peer:
// client-cache hits and misses (result + prefix series combined) and
// accepted soft-replica announces.
func e14Counters(n *Network) (hits, misses, announced float64) {
	for _, p := range n.Peers {
		for _, f := range p.Telemetry().Gather() {
			var sum float64
			for _, s := range f.Samples {
				sum += s.Value
			}
			switch f.Name {
			case "alvis_readcache_hits_total":
				hits += sum
			case "alvis_readcache_misses_total":
				misses += sum
			case "alvis_softreplica_announced_total":
				announced += sum
			}
		}
	}
	return hits, misses, announced
}

// e14LoadSnapshot reads every peer's served-load meter (requests
// received, presentation traffic excluded — the claim concerns
// posting-list serving, like the bandwidth experiments).
func e14LoadSnapshot(n *Network) []metrics.Snapshot {
	out := make([]metrics.Snapshot, len(n.Peers))
	for i, p := range n.Peers {
		out[i] = n.Net.Load(p.Addr()).Snapshot()
	}
	return out
}

// e14LoadRatio reduces per-peer served-load deltas to the imbalance
// metric max/mean over retrieval bytes. A pass that served everything
// from client caches put zero load on every peer — zero imbalance, so
// the ratio reports the ideal 1.
func e14LoadRatio(n *Network, before, after []metrics.Snapshot) float64 {
	loads := make([]float64, len(before))
	var total float64
	for i := range before {
		d := after[i].Sub(before[i])
		b := d.Bytes - d.PerType[core.MsgDocInfo].Bytes
		loads[i] = float64(b)
		total += float64(b)
	}
	if total <= 0 {
		return 1
	}
	mean := total / float64(len(loads))
	maxv := 0.0
	for _, l := range loads {
		if l > maxv {
			maxv = l
		}
	}
	return maxv / mean
}

// RunE14 measures the hot-key read path — client-side result and
// posting-prefix caches plus popularity-triggered soft replication —
// under zipfian repeat-query traffic, the read-side counterpart of the
// paper's storage-side load-balancing concern. A fixed set of frontend
// peers first issues every pool query once (steady-state warm-up; hot
// keys get promoted to soft replicas), then a measured pass samples the
// pool zipf(1.0) — the repeat skew of real query logs. Both arms run
// identical network state, query sequence and read options (streamed,
// hedged, replica-spread reads at R=3) over a wire with non-zero
// latency; the arms differ only in the cache/soft-replica knobs. The
// claim: with the hot-key path on, repeat-heavy traffic is answered at
// the edge — p99 latency and the served-load imbalance (max/mean bytes
// across peers) both drop to at most half of the disabled arm's, while
// every query returns the identical top-10 set.
func RunE14(scale Scale) (*metrics.Table, error) {
	numDocs := pick(scale, 4000, 700)
	peers := pick(scale, 64, 24)
	numFrontends := pick(scale, 8, 4)
	poolSize := pick(scale, 24, 12)
	numQueries := pick(scale, 400, 120)
	latency := pick(scale, 2*time.Millisecond, time.Millisecond)
	const k = 10

	hdkCfg := hdkConfigFor(numDocs)
	hdkCfg.TruncK = pick(scale, 600, 300)
	coll := corpus.Generate(corpus.Params{
		NumDocs:    numDocs,
		VocabSize:  numDocs,
		ZipfS:      1.0,
		MeanDocLen: 60,
		NumTopics:  20,
		Seed:       151,
	})
	pool := e13Queries(poolSize, pick(scale, 60, 30), 153)

	// The measured sequence — (query rank, frontend) pairs — is drawn
	// once and replayed identically by both arms.
	zs := corpus.NewZipfSampler(1.0, len(pool))
	rng := rand.New(rand.NewSource(155))
	type draw struct{ rank, frontend int }
	seq := make([]draw, numQueries)
	for i := range seq {
		seq[i] = draw{rank: zs.Rank(rng), frontend: rng.Intn(numFrontends)}
	}

	t := metrics.NewTable(
		fmt.Sprintf("E14: hot-key caching + soft replication (zipf(1.0) repeats, %d docs, %d peers, %d frontends, %d queries)",
			numDocs, peers, numFrontends, len(seq)),
		"arm", "p99 ms", "load max/mean", "identical@10", "cache hit frac", "soft announced",
	)

	type armResult struct {
		p99      time.Duration
		loadVar  float64
		sets     []e13TopSet
		hitFrac  float64
		announce float64
	}
	runArm := func(enabled bool) (armResult, error) {
		cfg := core.Config{
			Strategy:          core.StrategyHDK,
			HDK:               hdkCfg,
			TopK:              k,
			ReplicationFactor: 3,
			StreamTopK:        true,
		}
		if enabled {
			cfg.ResultCache = 64
			cfg.PrefixCache = 256
			cfg.CacheTTL = time.Minute
			cfg.HotKeyThreshold = 2
			cfg.SoftReplicas = 2
			cfg.SoftReplicaTTL = time.Minute
		}
		n := NewNetwork(Options{NumPeers: peers, Core: cfg, Seed: 157})
		if err := n.Distribute(coll); err != nil {
			return armResult{}, err
		}
		if err := n.PublishStats(); err != nil {
			return armResult{}, err
		}
		if _, _, err := n.PublishHDK(); err != nil {
			return armResult{}, err
		}
		opts := []core.SearchOption{
			core.WithReadConsistency(core.ReadAnyReplica),
			core.WithHedging(2 * latency),
		}
		// Warm-up on a latency-free wire: every frontend resolves every
		// pool query once (and heats the owners' popularity trackers).
		for f := 0; f < numFrontends; f++ {
			for _, q := range pool {
				if _, err := n.Peers[f].Search(context.Background(), q.Text(), opts...); err != nil {
					return armResult{}, err
				}
			}
		}
		if enabled {
			for _, p := range n.Peers {
				if _, err := p.PromoteHotKeys(context.Background()); err != nil {
					return armResult{}, err
				}
			}
		}

		n.Net.SetLatency(latency)
		loadBefore := e14LoadSnapshot(n)
		hist := metrics.NewHistogram()
		sets := make([]e13TopSet, len(seq))
		for i, d := range seq {
			p := n.Peers[d.frontend]
			start := time.Now()
			resp, err := p.Search(context.Background(), pool[d.rank].Text(), opts...)
			if err != nil {
				return armResult{}, err
			}
			hist.Add(int(time.Since(start) / time.Microsecond))
			set := e13TopSet{scores: make(map[postings.DocRef]float64, len(resp.Results))}
			for _, r := range resp.Results {
				set.scores[r.Ref] = r.Score
			}
			if len(resp.Results) > 0 {
				set.boundary = resp.Results[len(resp.Results)-1].Score
			}
			sets[i] = set
		}
		n.Net.SetLatency(0)

		hits, misses, announced := e14Counters(n)
		hitFrac := 0.0
		if hits+misses > 0 {
			hitFrac = hits / (hits + misses)
		}
		return armResult{
			p99:      time.Duration(hist.Percentile(99)) * time.Microsecond,
			loadVar:  e14LoadRatio(n, loadBefore, e14LoadSnapshot(n)),
			sets:     sets,
			hitFrac:  hitFrac,
			announce: announced,
		}, nil
	}

	off, err := runArm(false)
	if err != nil {
		return nil, err
	}
	on, err := runArm(true)
	if err != nil {
		return nil, err
	}
	identical := 0
	for i := range off.sets {
		if e13SameTop(off.sets[i], on.sets[i]) {
			identical++
		}
	}
	nq := float64(len(seq))
	t.AddRow("disabled", float64(off.p99)/float64(time.Millisecond), off.loadVar, 1.0, off.hitFrac, off.announce)
	t.AddRow("hot-key path", float64(on.p99)/float64(time.Millisecond), on.loadVar,
		float64(identical)/nq, on.hitFrac, on.announce)
	return t, nil
}
