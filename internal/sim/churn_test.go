package sim

import "testing"

// TestRunE9SmallShape pins the churn experiment's claims: with
// ReplicationFactor 3 the workload keeps succeeding (>= 99%) and the
// settled recall stays within 1% of the no-churn run, while the
// single-copy index measurably loses keys and recall.
func TestRunE9SmallShape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment shape test skipped in -short mode")
	}
	tbl, err := RunE9(ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	rows := tableRows(tbl.String())
	if len(rows) != 2 {
		t.Fatalf("E9 rows = %d, want 2\n%s", len(rows), tbl)
	}
	var r1, r3 []string
	for _, r := range rows {
		switch r[0] {
		case "1":
			r1 = r
		case "3":
			r3 = r
		}
	}
	if r1 == nil || r3 == nil {
		t.Fatalf("missing factor rows\n%s", tbl)
	}

	// R=3: the churn window and the settled phase both keep the workload
	// alive, and recall is within 1% of the no-churn reference.
	if s := atof(t, r3[1]); s < 0.99 {
		t.Errorf("R=3 churn-window success = %.3f, want >= 0.99\n%s", s, tbl)
	}
	if s := atof(t, r3[2]); s < 0.99 {
		t.Errorf("R=3 settled success = %.3f, want >= 0.99\n%s", s, tbl)
	}
	if rec := atof(t, r3[3]); rec < 0.99 {
		t.Errorf("R=3 settled recall = %.3f, want >= 0.99\n%s", rec, tbl)
	}
	// R=3 keeps every key live (replicas survive the kills).
	if kb, ka := atoi(t, r3[4]), atoi(t, r3[5]); ka < kb {
		t.Errorf("R=3 live keys dropped %d -> %d\n%s", kb, ka, tbl)
	}

	// R=1 measurably loses keys and recall compared to R=3.
	if kb, ka := atoi(t, r1[4]), atoi(t, r1[5]); ka >= kb {
		t.Errorf("R=1 live keys did not drop (%d -> %d)\n%s", kb, ka, tbl)
	}
	if rec1, rec3 := atof(t, r1[3]), atof(t, r3[3]); rec1 >= rec3 {
		t.Errorf("R=1 recall %.3f should trail R=3 recall %.3f\n%s", rec1, rec3, tbl)
	}
}
