package sim

import (
	"testing"
)

// TestRunE12SmallShape pins the persistence experiment's claims: a
// restarted peer backed by the durable engine recovers its slice with
// at least 10x fewer transferred entries than a cold rejoin, and
// retrieval quality is unharmed in both arms (R=3 replicas covered the
// downtime window).
func TestRunE12SmallShape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment shape test skipped in -short mode")
	}
	tbl, err := RunE12(ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	rows := tableRows(tbl.String())
	if len(rows) != 2 {
		t.Fatalf("E12 rows = %d, want 2\n%s", len(rows), tbl)
	}
	var cold, delta []string
	for _, r := range rows {
		switch r[0] {
		case "memory (cold rejoin)":
			cold = r
		case "persistent (delta rejoin)":
			delta = r
		}
	}
	if cold == nil || delta == nil {
		t.Fatalf("missing arms\n%s", tbl)
	}

	coldKeys, deltaKeys := atoi(t, cold[1]), atoi(t, delta[1])
	if coldKeys == 0 {
		t.Fatalf("cold rejoin transferred no keys — the fixture never migrated anything\n%s", tbl)
	}
	if deltaKeys*10 > coldKeys {
		t.Errorf("delta rejoin transferred %d keys vs cold %d — less than the 10x reduction\n%s",
			deltaKeys, coldKeys, tbl)
	}
	if m := atoi(t, delta[2]); m == 0 {
		t.Errorf("delta arm walked no manifest pairs — the delta path never ran\n%s", tbl)
	}

	for _, arm := range [][]string{cold, delta} {
		if s := atof(t, arm[3]); s < 0.99 {
			t.Errorf("%s success = %.3f, want >= 0.99\n%s", arm[0], s, tbl)
		}
		if rec := atof(t, arm[4]); rec < 0.99 {
			t.Errorf("%s recall = %.3f, want >= 0.99\n%s", arm[0], rec, tbl)
		}
	}
}

// BenchmarkRejoinTransfer reports the restart experiment's transfer
// counts as benchmark metrics (CI uploads them as BENCH_pr5.json): one
// sub-benchmark per arm, keys/rejoin being the full-entry transfers the
// restarted peers paid.
func BenchmarkRejoinTransfer(b *testing.B) {
	for _, arm := range []struct {
		name       string
		persistent bool
	}{
		{"cold", false},
		{"delta", true},
	} {
		b.Run(arm.name, func(b *testing.B) {
			numDocs, peers, kill := 600, 10, 2
			hdkCfg := hdkConfigFor(numDocs)
			coll := corpusFor(numDocs, 131)
			for i := 0; i < b.N; i++ {
				pulled, manifest, _, _, err := e12Trial(coll, nil, peers, kill, hdkCfg, arm.persistent)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(pulled), "keys/rejoin")
				b.ReportMetric(float64(manifest), "manifest/rejoin")
			}
		})
	}
}
