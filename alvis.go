// Package alvisp2p is a Go reproduction of "AlvisP2P: Scalable
// Peer-to-Peer Text Retrieval in a Structured P2P Network" (Luu et al.,
// VLDB 2008): a full-text retrieval engine over a structured P2P overlay
// in which every peer indexes its own documents and maintains a slice of
// a global distributed index of carefully chosen term combinations with
// truncated posting lists.
//
// The package is a facade over the layered implementation (see DESIGN.md
// for the architecture):
//
//	net := alvisp2p.NewInMemoryNetwork()          // or DialTCP for real sockets
//	peer, _ := net.NewPeer("library", alvisp2p.Config{})
//	peer.AddFile("intro.txt", []byte("peer to peer retrieval ..."))
//	peer.PublishIndex(ctx)
//	resp, _ := peer.Search(ctx, "peer retrieval",
//	        alvisp2p.WithTopK(10),
//	        alvisp2p.WithTimeout(200*time.Millisecond))
//	for _, r := range resp.Results { ... }
//
// Every network-touching operation takes a context.Context: cancelling
// it unwinds the operation mid-fan-out (no further RPCs are spawned) and
// a deadline turns into connection/read timeouts on the TCP transport.
// Search additionally accepts functional options — WithTopK,
// WithTimeout, WithReadConsistency, WithHedging, WithStrategy,
// WithStreaming, WithTrace — that tune a single query without touching
// the peer's configuration. A cancelled search returns ErrQueryCancelled, an
// expired one ErrPartialResults; both leave the usable ranked prefix in
// the response (Partial is set).
//
// Deadlines also cross the wire: a query's remaining budget travels in
// every frame header, and a peer configured with
// Config.AdmissionWatermark sheds requests that can no longer answer in
// time *before* doing the work (the shed is typed, and the read paths
// retry it on another replica).
//
// Indexing strategies: HDK (frequency-driven term combinations, the
// default) and QDI (query-driven on-demand indexing); switchable at
// runtime like the paper's demonstration, and per query via
// WithStrategy.
//
// Publication and search fan out concurrently by default: key operations
// are resolved in bulk and coalesced into one batched RPC per
// responsible peer (see DESIGN.md, "The batching / fan-out layer").
// Config.Concurrency tunes the fan-out width; setting it to 1 restores
// the fully sequential per-key paths. Both settings produce identical
// results, traces and global index state.
//
// Config.ReplicationFactor makes the global index churn-tolerant: every
// entry is kept at its responsible peer plus R−1 ring successors
// (write-through), reads fall over to replicas when the primary is
// unreachable, and ring changes trigger key migration (see DESIGN.md,
// "The replication layer"). With replication on,
// WithReadConsistency(ReadAnyReplica) additionally spreads a query's
// reads across each key's whole replica set. The default (1) keeps the
// single-copy behaviour and its byte-identical determinism contract.
//
// Config.DataDir makes the peer's index slice durable (a write-ahead
// log compacted into snapshots, see DESIGN.md "Durability & recovery"):
// a restarted peer recovers its slice from disk and rejoins the ring
// with a delta pull — only the writes it missed while down transfer —
// instead of re-pulling its whole range. Config.AntiEntropyInterval
// adds a background replica-repair sweep on top of the ring-change
// handoffs.
//
// For zipfian read traffic, Config.ResultCache and Config.PrefixCache
// enable client-side caches (invalidated by ring changes, local writes,
// and Config.CacheTTL), and Config.HotKeyThreshold enables popularity
// soft replication: keys whose read rate crosses the threshold get
// Config.SoftReplicas extra cached copies pushed to derived peers
// outside the successor set, which hedged reads fold in (see DESIGN.md,
// "Hot-key caching & popularity-aware soft replication").
package alvisp2p

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/docs"
	"repro/internal/hdk"
	"repro/internal/ids"
	"repro/internal/lattice"
	"repro/internal/qdi"
	"repro/internal/telemetry"
	"repro/internal/textproc"
	"repro/internal/transport"
)

// Re-exported configuration and result types. The facade keeps the
// internal packages' types where they are self-contained.
type (
	// Config configures a peer; the zero value uses the paper's
	// defaults (HDK strategy, DFmax 500, smax 3, TruncK 500, BM25).
	Config = core.Config
	// Strategy selects HDK or QDI indexing.
	Strategy = core.Strategy
	// Result is one search hit (hosting peer URL, title, snippet,
	// relevance score — the §4 presentation).
	Result = core.Result
	// SearchResponse is what Search returns: ranked results, the
	// optional trace, and whether cancellation made them partial.
	SearchResponse = core.SearchResponse
	// SearchOption tunes one query; see WithTopK and friends.
	SearchOption = core.SearchOption
	// ReadConsistency selects which index copies serve a query's reads.
	ReadConsistency = core.ReadConsistency
	// QueryTrace reports a search's probe/skip/activation counts.
	QueryTrace = core.QueryTrace
	// Document is a shared document with its access policy.
	Document = docs.Document
	// Access is a document access policy (public, or user+password).
	Access = docs.Access
	// Digest is the Alvis document digest (external engine integration).
	Digest = docs.Digest
	// HDKConfig are the Highly-Discriminative-Keys parameters.
	HDKConfig = hdk.Config
	// QDIConfig are the Query-Driven-Indexing parameters.
	QDIConfig = qdi.Config
	// LatticeConfig controls retrieval-side lattice exploration.
	LatticeConfig = lattice.Config
	// Addr is a peer's transport address.
	Addr = transport.Addr
)

// Indexing strategies.
const (
	StrategyHDK = core.StrategyHDK
	StrategyQDI = core.StrategyQDI
)

// Read-consistency levels for WithReadConsistency.
const (
	// ReadPrimaryOnly reads every key from its responsible peer
	// (replica fallover only on primary failure). The default.
	ReadPrimaryOnly = core.ReadPrimaryOnly
	// ReadAnyReplica spreads each key's read across the primary's
	// replica set, trading a little freshness for hotspot relief.
	ReadAnyReplica = core.ReadAnyReplica
)

// Per-query options (functional options for Search).
var (
	// WithTopK bounds the query's result count and per-probe transfer
	// budget to n.
	WithTopK = core.WithTopK
	// WithTimeout gives the query its own deadline; on expiry the
	// usable prefix is returned with ErrPartialResults.
	WithTimeout = core.WithTimeout
	// WithReadConsistency selects ReadPrimaryOnly or ReadAnyReplica.
	WithReadConsistency = core.WithReadConsistency
	// WithHedging races a slow (or shedding) replica against the
	// next-best copy after the given delay, first response wins —
	// bounding read tail latency under ReadAnyReplica.
	WithHedging = core.WithHedging
	// WithStrategy overrides HDK/QDI for this query only.
	WithStrategy = core.WithStrategy
	// WithStreaming switches this query between the streamed
	// score-bounded read path and classic one-shot pulls, overriding
	// Config.StreamTopK. Same top-k set (up to score-quantization ties
	// at the boundary), a fraction of the bytes; see core.WithStreaming
	// for the exact result contract.
	WithStreaming = core.WithStreaming
	// WithTrace toggles the response's QueryTrace (default on).
	WithTrace = core.WithTrace
	// WithResultCache(false) bypasses the peer's resolved-result cache
	// for this query (freshness-critical callers); no-op when
	// Config.ResultCache is off.
	WithResultCache = core.WithResultCache
)

// Request-level errors (match with errors.Is).
var (
	// ErrQueryCancelled: the caller cancelled the context mid-query.
	ErrQueryCancelled = core.ErrQueryCancelled
	// ErrPartialResults: the deadline expired; the response carries the
	// ranked prefix gathered before it.
	ErrPartialResults = core.ErrPartialResults
	// ErrPeerClosed: the operation ran on a peer after Close.
	ErrPeerClosed = core.ErrPeerClosed
)

// Peer is one AlvisP2P participant: it shares documents, contributes a
// slice of the global index, and searches the whole network.
type Peer struct {
	inner *core.Peer
}

// Network abstracts how peers attach to each other: in-memory (tests,
// simulations, single-process demos) or TCP (real deployments).
type Network struct {
	mem *transport.Mem
}

// NewInMemoryNetwork creates a process-local network. All peers created
// from it exchange real protocol messages through a metered in-memory
// transport.
func NewInMemoryNetwork() *Network {
	return &Network{mem: transport.NewMem()}
}

// NewPeer attaches a new peer with the given name (empty = generated).
// The peer starts as its own one-node ring; call Join to enter an
// existing network.
func (n *Network) NewPeer(name string, cfg Config) (*Peer, error) {
	if n.mem == nil {
		return nil, fmt.Errorf("alvisp2p: network not initialized")
	}
	d := transport.NewDispatcher()
	ep := n.mem.Endpoint(name, d.Serve)
	id := ids.HashString(string(ep.Addr()))
	inner, err := core.OpenPeer(id, ep, d, cfg)
	if err != nil {
		_ = ep.Close()
		return nil, err
	}
	return &Peer{inner: inner}, nil
}

// ListenTCP creates a standalone peer listening on addr (e.g.
// "0.0.0.0:4000") — the real-deployment entry point used by cmd/alvisp2p.
func ListenTCP(addr string, cfg Config) (*Peer, error) {
	d := transport.NewDispatcher()
	ep, err := transport.ListenTCP(addr, d.Serve)
	if err != nil {
		return nil, err
	}
	id := ids.HashString(string(ep.Addr()))
	inner, err := core.OpenPeer(id, ep, d, cfg)
	if err != nil {
		_ = ep.Close()
		return nil, err
	}
	return &Peer{inner: inner}, nil
}

// Addr returns the peer's address, which other peers use to Join.
func (p *Peer) Addr() Addr { return p.inner.Addr() }

// Join enters the network reachable at bootstrap. The context bounds the
// whole join, including the bootstrap dial on TCP (a dead bootstrap
// address fails at the context's deadline, not the OS default timeout).
func (p *Peer) Join(ctx context.Context, bootstrap Addr) error {
	return p.inner.Join(ctx, bootstrap)
}

// Maintain runs one maintenance round (ring repair, finger refresh,
// QDI aging). Long-running peers call it periodically.
func (p *Peer) Maintain(ctx context.Context) { p.inner.Maintain(ctx) }

// Close shuts the peer down gracefully: in-flight operations are
// unwound (their contexts cancel), the dispatcher refuses new work, and
// the transport drains its server goroutines before returning. Close is
// idempotent and safe to call concurrently with in-flight searches.
func (p *Peer) Close() error { return p.inner.Close() }

// Telemetry returns the peer's metric registry: every counter the peer
// maintains (transport traffic, admission control, index and storage
// gauges, replication transfers, per-peer latency EWMAs, search
// outcomes) under one stable vocabulary. Serve it over HTTP with
// Telemetry().Serve(addr) — the /metrics endpoint the cluster harness
// scrapes — or read it in-process with Gather.
func (p *Peer) Telemetry() *telemetry.Registry { return p.inner.Telemetry() }

// AddDocument shares a document (it stays local; publish to make it
// searchable network-wide).
func (p *Peer) AddDocument(d *Document) (*Document, error) { return p.inner.AddDocument(d) }

// AddFile parses and shares a file (text, HTML or Alvis XML, by
// extension).
func (p *Peer) AddFile(name string, content []byte) (*Document, error) {
	return p.inner.AddFile(name, content)
}

// RemoveDocument withdraws a shared document.
func (p *Peer) RemoveDocument(ctx context.Context, id uint32) error {
	return p.inner.RemoveDocument(ctx, id)
}

// Documents lists the peer's shared documents.
func (p *Peer) Documents() []*Document { return p.inner.Documents().List() }

// SetAccess changes a shared document's access policy.
func (p *Peer) SetAccess(id uint32, a Access) bool { return p.inner.Documents().SetAccess(id, a) }

// ImportDigest shares every document of an Alvis digest submitted by an
// external search engine (§4 heterogeneity support).
func (p *Peer) ImportDigest(dg *Digest) (int, error) { return p.inner.ImportDigest(dg) }

// BuildDigest exports the peer's shared documents as an Alvis digest.
func (p *Peer) BuildDigest() *Digest {
	return docs.BuildDigest(p.inner.Documents().List(), p.inner.LocalIndex().Analyzer())
}

// PublishIndex pushes the not-yet-published local documents into the
// global index (statistics, then keys per the active strategy).
// Cancelling the context stops the publication between batches;
// re-running it later converges (the index is merge-idempotent).
func (p *Peer) PublishIndex(ctx context.Context) error {
	_, err := p.inner.PublishIndex(ctx)
	return err
}

// Search runs a global multi-keyword query and returns ranked results
// with presentation data. Options tune the single query; see WithTopK,
// WithTimeout, WithReadConsistency, WithStrategy, WithTrace. On
// cancellation or deadline expiry the response still carries the ranked
// prefix gathered so far (Partial set) alongside ErrQueryCancelled or
// ErrPartialResults.
func (p *Peer) Search(ctx context.Context, query string, opts ...SearchOption) (*SearchResponse, error) {
	return p.inner.Search(ctx, query, opts...)
}

// Refine runs the paper's second retrieval step: forward the query to
// the local engines of the peers holding the first-step results.
func (p *Peer) Refine(ctx context.Context, query string, firstStep []Result, topK int) ([]Result, error) {
	return p.inner.Refine(ctx, query, firstStep, topK)
}

// FetchDocument retrieves a result document's content from its hosting
// peer, subject to its access policy.
func (p *Peer) FetchDocument(ctx context.Context, r Result, user, password string) (title, body string, err error) {
	return p.inner.FetchDocument(ctx, r.Ref, user, password)
}

// JoinLegacy is Join without a context.
//
// Deprecated: use Join(ctx, bootstrap). Kept so pre-context callers
// migrate incrementally; internal code must not use it (CI enforces).
func (p *Peer) JoinLegacy(bootstrap Addr) error { return p.Join(context.Background(), bootstrap) }

// PublishIndexLegacy is PublishIndex without a context.
//
// Deprecated: use PublishIndex(ctx).
func (p *Peer) PublishIndexLegacy() error { return p.PublishIndex(context.Background()) }

// SearchLegacy is the pre-context Search: it runs to completion with the
// peer-level defaults and returns the flattened (results, trace, error)
// triple of the old signature.
//
// Deprecated: use Search(ctx, query, opts...).
func (p *Peer) SearchLegacy(query string) ([]Result, *QueryTrace, error) {
	resp, err := p.Search(context.Background(), query)
	if resp == nil {
		return nil, nil, err
	}
	return resp.Results, resp.Trace, err
}

// RefineLegacy is Refine without a context.
//
// Deprecated: use Refine(ctx, query, firstStep, topK).
func (p *Peer) RefineLegacy(query string, firstStep []Result, topK int) ([]Result, error) {
	return p.Refine(context.Background(), query, firstStep, topK)
}

// FetchDocumentLegacy is FetchDocument without a context.
//
// Deprecated: use FetchDocument(ctx, r, user, password).
func (p *Peer) FetchDocumentLegacy(r Result, user, password string) (title, body string, err error) {
	return p.FetchDocument(context.Background(), r, user, password)
}

// Strategy returns the active indexing strategy.
func (p *Peer) Strategy() Strategy { return p.inner.Strategy() }

// SetStrategy switches between HDK and QDI at runtime.
func (p *Peer) SetStrategy(s Strategy) { p.inner.SetStrategy(s) }

// Stats reports the peer's contribution to the global index, for the
// demo's statistics screen.
type Stats struct {
	SharedDocuments int
	LocalTerms      int
	GlobalKeys      int // keys stored at this peer
	GlobalPostings  int
	GlobalBytes     int
}

// Stats returns current local statistics.
func (p *Peer) Stats() Stats {
	st := p.inner.GlobalIndex().Store().Stats()
	return Stats{
		SharedDocuments: p.inner.Documents().Len(),
		LocalTerms:      p.inner.LocalIndex().VocabularySize(),
		GlobalKeys:      st.Keys,
		GlobalPostings:  st.Postings,
		GlobalBytes:     st.Bytes,
	}
}

// Core exposes the underlying engine for advanced integrations (the
// examples use it for direct access to layers).
func (p *Peer) Core() *core.Peer { return p.inner }

// DefaultAnalyzer returns the text pipeline used by default (tokenizer,
// English stopwords, Porter stemmer); useful for building digests that
// agree with the engine's normalization.
func DefaultAnalyzer() *textproc.Analyzer { return textproc.Default }
