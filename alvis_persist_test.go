package alvisp2p_test

import (
	"context"
	"os"
	"testing"
	"time"

	alvisp2p "repro"
	"repro/internal/leakcheck"
)

// TestPersistentPeerRestart drives the durability feature end to end
// through the facade: a peer with a DataDir publishes an index, shuts
// down, and reopens — its global-index slice (and search results) must
// survive the restart without any network re-publication.
func TestPersistentPeerRestart(t *testing.T) {
	dir := t.TempDir()
	cfg := alvisp2p.Config{DataDir: dir}

	net := alvisp2p.NewInMemoryNetwork()
	p, err := net.NewPeer("durable", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.AddFile("doc1.txt", []byte("durable peer to peer retrieval engine")); err != nil {
		t.Fatal(err)
	}
	if _, err := p.AddFile("doc2.txt", []byte("write ahead logging for distributed indexes")); err != nil {
		t.Fatal(err)
	}
	if err := p.PublishIndex(context.Background()); err != nil {
		t.Fatal(err)
	}
	before := p.Stats()
	if before.GlobalKeys == 0 {
		t.Fatal("nothing published; fixture broken")
	}
	if err := p.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	// Reopen on a fresh in-memory network (same name, same data dir):
	// the slice comes back from disk.
	net2 := alvisp2p.NewInMemoryNetwork()
	re, err := net2.NewPeer("durable", cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	after := re.Stats()
	if after.GlobalKeys != before.GlobalKeys || after.GlobalPostings != before.GlobalPostings || after.GlobalBytes != before.GlobalBytes {
		t.Fatalf("restart lost index state: before %+v, after %+v", before, after)
	}
	// Documents are content, not index: restore them, then search the
	// recovered index without republishing.
	if _, err := re.AddFile("doc1.txt", []byte("durable peer to peer retrieval engine")); err != nil {
		t.Fatal(err)
	}
	if _, err := re.AddFile("doc2.txt", []byte("write ahead logging for distributed indexes")); err != nil {
		t.Fatal(err)
	}
	resp, err := re.Search(context.Background(), "durable retrieval")
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) == 0 {
		t.Fatal("recovered index answered nothing")
	}
}

// TestPersistentPeerBadDataDir pins the error surface: an unusable data
// directory fails NewPeer loudly instead of silently running volatile.
func TestPersistentPeerBadDataDir(t *testing.T) {
	dir := t.TempDir() + "/file"
	// Make the path a *file*, so the engine cannot create its directory.
	if err := os.WriteFile(dir, []byte("not a directory"), 0o644); err != nil {
		t.Fatal(err)
	}
	net := alvisp2p.NewInMemoryNetwork()
	if _, err := net.NewPeer("broken", alvisp2p.Config{DataDir: dir + "/sub"}); err == nil {
		t.Fatal("NewPeer with an unopenable DataDir must fail")
	}
}

// TestAntiEntropyLoopLifecycle pins that the background sweep goroutine
// (Config.AntiEntropyInterval) starts with the peer and is unwound by
// Close — leakcheck would catch a ticker goroutine left behind.
func TestAntiEntropyLoopLifecycle(t *testing.T) {
	defer leakcheck.Check(t)()
	net := alvisp2p.NewInMemoryNetwork()
	p, err := net.NewPeer("sweeper", alvisp2p.Config{
		ReplicationFactor:   2,
		AntiEntropyInterval: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	//alvislint:allow sleepsync real ticker cadence: lets sweeps fire before Close; the facade exposes no sweep counter to poll
	time.Sleep(25 * time.Millisecond) // let a few ticks fire
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
}
