package alvisp2p_test

import (
	"context"
	"errors"
	"testing"
	"time"

	alvisp2p "repro"
	"repro/internal/leakcheck"
)

// TestTCPSearchCancelAndClose drives the context API end to end over
// real sockets: a deadline-bound search returns the partial-results
// taxonomy, Close drains the TCP server goroutines (leakcheck), and a
// closed peer refuses further work with ErrPeerClosed.
func TestTCPSearchCancelAndClose(t *testing.T) {
	defer leakcheck.Check(t)()
	cfg := alvisp2p.Config{HDK: alvisp2p.HDKConfig{DFMax: 3, SMax: 2, TruncK: 20}}
	a, err := alvisp2p.ListenTCP("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := alvisp2p.ListenTCP("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}

	joinCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	err = b.Join(joinCtx, a.Addr())
	cancel()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		a.Maintain(context.Background())
		b.Maintain(context.Background())
	}
	if _, err := a.AddFile("doc.txt", []byte("tcp deadline cancellation exercised end to end")); err != nil {
		t.Fatal(err)
	}
	if err := a.PublishIndex(context.Background()); err != nil {
		t.Fatal(err)
	}

	// A deadline that has effectively already passed: the query reports
	// the partial taxonomy without hanging on the sockets.
	resp, err := b.Search(context.Background(), "tcp deadline", alvisp2p.WithTimeout(time.Nanosecond))
	if !errors.Is(err, alvisp2p.ErrPartialResults) && !errors.Is(err, alvisp2p.ErrQueryCancelled) {
		t.Fatalf("err = %v, want partial/cancelled taxonomy", err)
	}
	if resp == nil || !resp.Partial {
		t.Fatalf("resp = %+v, want Partial", resp)
	}

	// A healthy search still works.
	full, err := b.Search(context.Background(), "tcp deadline")
	if err != nil || len(full.Results) == 0 {
		t.Fatalf("healthy search: %v, %d results", err, len(full.Results))
	}

	// The deprecated wrapper stays behaviourally identical.
	legacyRes, legacyTrace, err := b.SearchLegacy("tcp deadline")
	if err != nil || len(legacyRes) != len(full.Results) || legacyTrace == nil {
		t.Fatalf("SearchLegacy: %v, %d results, trace=%v", err, len(legacyRes), legacyTrace)
	}

	// Close drains; afterwards the peer refuses work.
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Search(context.Background(), "tcp deadline"); !errors.Is(err, alvisp2p.ErrPeerClosed) {
		t.Fatalf("search on closed peer = %v, want ErrPeerClosed", err)
	}
}
