// QDI adaptivity: the paper's query-driven indexing lifecycle, observed
// live. A network starts with a single-term index only; a Zipf query
// stream makes popular term combinations cross the activation threshold
// and get indexed on demand; a mid-stream shift in query popularity lets
// the old keys decay and be evicted while the new ones activate —
// "an efficient indexing structure adaptive to the current query
// popularity distribution" (§2).
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/hdk"
	"repro/internal/metrics"
	"repro/internal/qdi"
	"repro/internal/sim"
)

func main() {
	const (
		numPeers = 12
		numDocs  = 1200
		slices   = 8
		sliceLen = 150
	)
	n := sim.NewNetwork(sim.Options{
		NumPeers: numPeers,
		Seed:     3,
		Core: core.Config{
			Strategy: core.StrategyQDI,
			HDK:      hdk.Config{DFMax: 60, SMax: 3, Window: 30, TruncK: 60},
			QDI: qdi.Config{
				ActivateThreshold: 3,
				EvictThreshold:    0.5,
				DecayFactor:       0.6,
				TruncK:            60,
			},
		},
	})
	coll := corpus.Generate(corpus.Params{NumDocs: numDocs, VocabSize: numDocs, MeanDocLen: 60, Seed: 4})
	if err := n.Distribute(coll); err != nil {
		log.Fatal(err)
	}
	if err := n.PublishStats(); err != nil {
		log.Fatal(err)
	}
	// Under QDI the initial index holds single terms only.
	if _, _, err := n.PublishHDK(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network up: %d peers, %d docs, single-term index only\n\n", numPeers, numDocs)

	// Two workloads with disjoint popularity heads; the second replaces
	// the first halfway through.
	wA := corpus.GenerateWorkload(coll, corpus.WorkloadParams{NumQueries: 50, MaxTerms: 3, Seed: 5})
	wB := corpus.GenerateWorkload(coll, corpus.WorkloadParams{NumQueries: 50, MaxTerms: 3, Seed: 77})

	tbl := metrics.NewTable("QDI index evolution over the query stream",
		"slice", "workload", "full-key hit rate", "on-demand keys", "activations", "evictions")
	rng := rand.New(rand.NewSource(6))
	activations, evictions := 0, 0
	for s := 1; s <= slices; s++ {
		w, label := wA, "A"
		if s > slices/2 {
			w, label = wB, "B"
		}
		stream := w.Stream(sliceLen, int64(100+s))
		hits, multi := 0, 0
		for _, q := range stream {
			if len(q.Terms) < 2 {
				continue
			}
			multi++
			resp, err := n.RandomPeer(rng).Search(context.Background(), q.Text())
			if err != nil {
				log.Fatal(err)
			}
			trace := resp.Trace
			if trace.FullHit {
				hits++
			}
			activations += trace.Activated
		}
		// Periodic maintenance ages the popularity statistics and evicts
		// keys the current workload no longer asks for.
		for _, p := range n.Peers {
			evictions += p.QDI().MaintenanceTick()
		}
		hitRate := 0.0
		if multi > 0 {
			hitRate = float64(hits) / float64(multi)
		}
		onDemand := 0
		for _, p := range n.Peers {
			onDemand += len(p.QDI().OwnedKeys())
		}
		tbl.AddRow(s, label, hitRate, onDemand, activations, evictions)
	}
	fmt.Println(tbl.String())
	fmt.Println(`reading the table:
 - during workload A the hit rate climbs as its popular combinations are
   indexed on demand;
 - the shift to workload B (slice 5) drops the hit rate, then it recovers
   as B's combinations activate;
 - A's now-cold keys decay below the eviction threshold and are removed.`)
}
