// Quickstart: build a small AlvisP2P network in one process, share
// documents from several peers, publish the distributed index, and run
// multi-keyword searches from any peer.
package main

import (
	"fmt"
	"log"

	alvisp2p "repro"
)

func main() {
	// A process-local network; peers exchange the real protocol messages
	// over a metered in-memory transport.
	net := alvisp2p.NewInMemoryNetwork()

	// The collection is tiny, so scale the HDK thresholds down: a term
	// combination counts as "frequent" above DFmax=2 documents.
	cfg := alvisp2p.Config{
		HDK: alvisp2p.HDKConfig{DFMax: 2, SMax: 3, Window: 20, TruncK: 50},
	}

	// Start four peers; the first bootstraps the ring, the rest join it.
	peers := make([]*alvisp2p.Peer, 4)
	for i := range peers {
		p, err := net.NewPeer(fmt.Sprintf("peer-%d", i), cfg)
		if err != nil {
			log.Fatal(err)
		}
		peers[i] = p
		if i > 0 {
			if err := p.Join(peers[0].Addr()); err != nil {
				log.Fatal(err)
			}
			// A maintenance sweep after each join keeps the ring exact.
			for _, q := range peers[:i+1] {
				q.Maintain()
			}
		}
	}
	for round := 0; round < 4; round++ {
		for _, p := range peers {
			p.Maintain()
		}
	}

	// Each peer shares a few documents — its "shared directory".
	collections := [][]string{
		{
			"Peer-to-peer networks distribute the indexing load across many machines.",
			"A distributed hash table routes every key lookup in logarithmic hops.",
		},
		{
			"Full-text retrieval ranks documents with the BM25 scoring function.",
			"Posting lists for frequent terms are truncated to their top entries.",
		},
		{
			"Query-driven indexing adds popular term combinations on demand.",
			"Highly discriminative keys bound the bandwidth of multi-keyword queries.",
		},
		{
			"Digital libraries publish their collections through gateway peers.",
			"Structured overlays assign every index key to a responsible peer.",
		},
	}
	for i, texts := range collections {
		for j, text := range texts {
			name := fmt.Sprintf("doc-%d-%d.txt", i, j)
			if _, err := peers[i].AddFile(name, []byte(text)); err != nil {
				log.Fatal(err)
			}
		}
	}

	// Publishing pushes statistics and index keys into the network.
	for i, p := range peers {
		if err := p.PublishIndex(); err != nil {
			log.Fatalf("peer %d publish: %v", i, err)
		}
	}

	// Any peer can now search the global collection.
	for _, query := range []string{
		"distributed indexing",
		"posting lists truncated",
		"retrieval ranking",
	} {
		results, trace, err := peers[3].Search(query)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("query %q — %d results (%d keys probed, %d skipped)\n",
			query, len(results), trace.Probes, trace.Skipped)
		for i, r := range results {
			fmt.Printf("  %d. [%.3f] %s\n     %s\n", i+1, r.Score, r.Title, r.URL)
		}
		fmt.Println()
	}

	// Fetch a document's full content from its hosting peer.
	results, _, err := peers[0].Search("query driven")
	if err != nil || len(results) == 0 {
		log.Fatalf("no results to fetch: %v", err)
	}
	title, body, err := peers[0].FetchDocument(results[0], "", "")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fetched %q from %s:\n  %s\n", title, results[0].Ref.Peer, body)
}
