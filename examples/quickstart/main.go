// Quickstart: build a small AlvisP2P network in one process, share
// documents from several peers, publish the distributed index, and run
// multi-keyword searches from any peer.
//
// Every network operation takes a context.Context — cancel it (or give
// it a deadline) and the distributed fan-out unwinds mid-flight. Search
// additionally accepts per-query options: WithTopK bounds both the
// result count and the posting-transfer budget, WithTimeout turns a slow
// query into a fast partial answer, WithReadConsistency spreads reads
// over replicas, WithStrategy flips HDK/QDI for one query.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"time"

	alvisp2p "repro"
)

func main() {
	ctx := context.Background()

	// A process-local network; peers exchange the real protocol messages
	// over a metered in-memory transport.
	net := alvisp2p.NewInMemoryNetwork()

	// The collection is tiny, so scale the HDK thresholds down: a term
	// combination counts as "frequent" above DFmax=2 documents.
	cfg := alvisp2p.Config{
		HDK: alvisp2p.HDKConfig{DFMax: 2, SMax: 3, Window: 20, TruncK: 50},
	}

	// Start four peers; the first bootstraps the ring, the rest join it.
	// Joins run under a deadline: a dead bootstrap fails fast instead of
	// hanging on the OS connect timeout.
	peers := make([]*alvisp2p.Peer, 4)
	for i := range peers {
		p, err := net.NewPeer(fmt.Sprintf("peer-%d", i), cfg)
		if err != nil {
			log.Fatal(err)
		}
		peers[i] = p
		if i > 0 {
			joinCtx, cancel := context.WithTimeout(ctx, 5*time.Second)
			err := p.Join(joinCtx, peers[0].Addr())
			cancel()
			if err != nil {
				log.Fatal(err)
			}
			// A maintenance sweep after each join keeps the ring exact.
			for _, q := range peers[:i+1] {
				q.Maintain(ctx)
			}
		}
	}
	for round := 0; round < 4; round++ {
		for _, p := range peers {
			p.Maintain(ctx)
		}
	}

	// Each peer shares a few documents — its "shared directory".
	collections := [][]string{
		{
			"Peer-to-peer networks distribute the indexing load across many machines.",
			"A distributed hash table routes every key lookup in logarithmic hops.",
		},
		{
			"Full-text retrieval ranks documents with the BM25 scoring function.",
			"Posting lists for frequent terms are truncated to their top entries.",
		},
		{
			"Query-driven indexing adds popular term combinations on demand.",
			"Highly discriminative keys bound the bandwidth of multi-keyword queries.",
		},
		{
			"Digital libraries publish their collections through gateway peers.",
			"Structured overlays assign every index key to a responsible peer.",
		},
	}
	for i, texts := range collections {
		for j, text := range texts {
			name := fmt.Sprintf("doc-%d-%d.txt", i, j)
			if _, err := peers[i].AddFile(name, []byte(text)); err != nil {
				log.Fatal(err)
			}
		}
	}

	// Publishing pushes statistics and index keys into the network.
	for i, p := range peers {
		if err := p.PublishIndex(ctx); err != nil {
			log.Fatalf("peer %d publish: %v", i, err)
		}
	}

	// Any peer can now search the global collection. Each query carries
	// its own knobs: a result budget and a deadline.
	for _, query := range []string{
		"distributed indexing",
		"posting lists truncated",
		"retrieval ranking",
	} {
		resp, err := peers[3].Search(ctx, query,
			alvisp2p.WithTopK(5),
			alvisp2p.WithTimeout(2*time.Second))
		if err != nil && !errors.Is(err, alvisp2p.ErrPartialResults) {
			log.Fatal(err)
		}
		fmt.Printf("query %q — %d results (%d keys probed, %d skipped)\n",
			query, len(resp.Results), resp.Trace.Probes, resp.Trace.Skipped)
		for i, r := range resp.Results {
			fmt.Printf("  %d. [%.3f] %s\n     %s\n", i+1, r.Score, r.Title, r.URL)
		}
		fmt.Println()
	}

	// Fetch a document's full content from its hosting peer.
	resp, err := peers[0].Search(ctx, "query driven")
	if err != nil || len(resp.Results) == 0 {
		log.Fatalf("no results to fetch: %v", err)
	}
	title, body, err := peers[0].FetchDocument(ctx, resp.Results[0], "", "")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fetched %q from %s:\n  %s\n", title, resp.Results[0].Ref.Peer, body)

	// A cancelled context stops a query mid-fan-out: here the context is
	// cancelled up front, so the search returns ErrQueryCancelled
	// without issuing a single RPC.
	cancelled, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := peers[0].Search(cancelled, "distributed retrieval"); errors.Is(err, alvisp2p.ErrQueryCancelled) {
		fmt.Println("cancelled query reported:", err)
	}
}
