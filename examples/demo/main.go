// Demo walkthrough: the paper's §5 demonstration script, end to end. An
// operational AlvisP2P network is stood up with a published corpus; the
// walkthrough then performs exactly what the demo invited visitors to
// do — submit several queries and inspect the distributed retrieval
// mechanics, switch between the HDK and QDI approaches at runtime, index
// some new documents live, and observe the network's critical statistics
// (bandwidth, storage, index composition).
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/hdk"
	"repro/internal/metrics"
	"repro/internal/qdi"
	"repro/internal/sim"
)

func main() {
	fmt.Println("— AlvisP2P demonstration (paper §5) —")

	// "a large corpus of documents will be published in an AlvisP2P
	// network running at a number of peers"
	n := sim.NewNetwork(sim.Options{
		NumPeers: 10,
		Seed:     42,
		Core: core.Config{
			Strategy: core.StrategyHDK,
			HDK:      hdk.Config{DFMax: 50, SMax: 3, Window: 30, TruncK: 50},
			QDI:      qdi.Config{ActivateThreshold: 2, TruncK: 50},
		},
	})
	coll := corpus.Generate(corpus.Params{NumDocs: 1000, VocabSize: 1000, MeanDocLen: 60, Seed: 43})
	if err := n.Distribute(coll); err != nil {
		log.Fatal(err)
	}
	if err := n.PublishStats(); err != nil {
		log.Fatal(err)
	}
	if _, _, err := n.PublishHDK(); err != nil {
		log.Fatal(err)
	}
	keys, postings, bytes := n.IndexStorage()
	fmt.Printf("network: 10 peers, %d documents published under HDK\n", len(coll.Docs))
	fmt.Printf("global index: %d keys, %d postings, %s\n\n", keys, postings, metrics.HumanBytes(int64(bytes)))

	// "submit several queries and observe the results obtained using the
	// distributed index"
	demoPeer := n.Peers[0]
	queries := []string{"term0001 term0004", "term0002 term0008 term0016", "term0100"}
	for _, q := range queries {
		before := n.Net.Meter().Snapshot()
		resp, err := demoPeer.Search(context.Background(), q)
		if err != nil {
			log.Fatal(err)
		}
		results, trace := resp.Results, resp.Trace
		used := n.Net.Meter().Snapshot().Sub(before)
		fmt.Printf("query %q: %d results, %d probes (%d skipped), %s transferred\n",
			q, len(results), trace.Probes, trace.Skipped, metrics.HumanBytes(used.Bytes))
		if len(results) > 0 {
			r := results[0]
			fmt.Printf("  top hit: [%.3f] %s — %s\n", r.Score, r.Title, r.URL)
		}
	}

	// "it will be possible to switch between the HDK and QDI approaches
	// at any time" — the switch flips every peer's strategy; a fresh QDI
	// network (single-term index only) then shows the on-demand indexing
	// lifecycle that the established HDK index would make redundant.
	fmt.Println("\nswitching every peer to QDI ...")
	for _, p := range n.Peers {
		p.SetStrategy(core.StrategyQDI)
	}
	fmt.Printf("  strategy now: %s on all peers\n", n.Peers[0].Strategy())

	fmt.Println("\na second network starts directly under QDI (single-term index only):")
	q := sim.NewNetwork(sim.Options{
		NumPeers: 10,
		Seed:     44,
		Core: core.Config{
			Strategy: core.StrategyQDI,
			HDK:      hdk.Config{DFMax: 50, SMax: 3, Window: 30, TruncK: 50},
			QDI:      qdi.Config{ActivateThreshold: 2, TruncK: 50},
		},
	})
	if err := q.Distribute(coll); err != nil {
		log.Fatal(err)
	}
	if err := q.PublishStats(); err != nil {
		log.Fatal(err)
	}
	if _, _, err := q.PublishHDK(); err != nil { // publishes level 1 only under QDI
		log.Fatal(err)
	}
	// Head terms have truncated single-term lists, so their combination
	// is non-redundant: repetition makes it popular and indexed on
	// demand.
	popular := "term0001 term0004"
	var activatedAt int
	for i := 1; i <= 4; i++ {
		resp, err := q.Peers[3].Search(context.Background(), popular)
		if err != nil {
			log.Fatal(err)
		}
		trace := resp.Trace
		if trace.Activated > 0 && activatedAt == 0 {
			activatedAt = i
		}
		fmt.Printf("  repeat %d of %q: %d probes, full-key hit: %v, activated now: %d\n",
			i, popular, trace.Probes, trace.FullHit, trace.Activated)
	}
	if activatedAt == 0 {
		log.Fatal("demo expectation failed: no on-demand indexing")
	}
	fmt.Printf("  -> the popular combination was indexed on demand at repeat %d;\n", activatedAt)
	fmt.Println("     subsequent repeats answer from its own key with a single probe")

	// "index some new documents"
	fmt.Println("\nindexing new documents live ...")
	host := n.Peers[7]
	for i, text := range []string{
		"freshly published report about zebrafish genomics",
		"zebrafish behavioural study with new imaging",
	} {
		if _, err := host.AddFile(fmt.Sprintf("new%d.txt", i), []byte(text)); err != nil {
			log.Fatal(err)
		}
	}
	if _, err := host.PublishIndex(context.Background()); err != nil {
		log.Fatal(err)
	}
	zresp, err := n.Peers[2].Search(context.Background(), "zebrafish")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("new content searchable immediately: %d results for \"zebrafish\"\n", len(zresp.Results))

	// "report the current state of the network, as well as some critical
	// statistics about bandwidth consumption, storage, etc."
	fmt.Println("\nnetwork statistics screen:")
	snap := n.Net.Meter().Snapshot()
	fmt.Printf("  total messages: %d, total traffic: %s\n", snap.Messages, metrics.HumanBytes(snap.Bytes))
	tbl := metrics.NewTable("per-peer index slices", "peer", "keys", "on-demand keys", "bytes")
	for i, p := range n.Peers {
		st := p.GlobalIndex().Store().Stats()
		onDemand := 0
		for _, k := range p.QDI().OwnedKeys() {
			if strings.Contains(k, " ") {
				onDemand++
			}
		}
		tbl.AddRow(fmt.Sprintf("peer%02d", i), st.Keys, onDemand, metrics.HumanBytes(int64(st.Bytes)))
	}
	fmt.Println(tbl.String())
}
