// Web retrieval: the paper's motivating workload at a larger scale. A
// 16-peer network indexes a synthetic web-like collection (Zipf term
// distribution, topical co-occurrence) under HDK, then answers a query
// workload while the example reports the demo's "critical statistics":
// bandwidth per query, probe counts, index storage per peer, and
// retrieval quality against a centralized reference.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/hdk"
	"repro/internal/metrics"
	"repro/internal/sim"
)

func main() {
	const (
		numPeers = 16
		numDocs  = 2000
	)
	fmt.Printf("building a %d-peer network over a %d-document web-like collection...\n", numPeers, numDocs)

	n := sim.NewNetwork(sim.Options{
		NumPeers: numPeers,
		Seed:     7,
		Core: core.Config{
			Strategy: core.StrategyHDK,
			HDK:      hdk.Config{DFMax: 100, SMax: 3, Window: 30, TruncK: 100},
		},
	})
	coll := corpus.Generate(corpus.Params{NumDocs: numDocs, VocabSize: numDocs, MeanDocLen: 60, Seed: 8})
	if err := n.Distribute(coll); err != nil {
		log.Fatal(err)
	}
	if err := n.PublishStats(); err != nil {
		log.Fatal(err)
	}
	keys, shipped, err := n.PublishHDK()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("HDK publishing: %d key publications, %d postings shipped\n", keys, shipped)

	totalKeys, totalPostings, totalBytes := n.IndexStorage()
	fmt.Printf("global index: %d distinct keys, %d postings, %s across %d peers\n\n",
		totalKeys, totalPostings, metrics.HumanBytes(int64(totalBytes)), numPeers)

	// Also stand up the single-term baseline on a twin network for a
	// bandwidth comparison.
	bn := sim.NewNetwork(sim.Options{NumPeers: numPeers, Seed: 9, Core: core.Config{}})
	if err := bn.Distribute(coll); err != nil {
		log.Fatal(err)
	}
	if err := bn.PublishStats(); err != nil {
		log.Fatal(err)
	}
	if _, _, err := bn.PublishBaseline(); err != nil {
		log.Fatal(err)
	}

	w := corpus.GenerateWorkload(coll, corpus.WorkloadParams{NumQueries: 40, MaxTerms: 3, Seed: 10})
	rng := rand.New(rand.NewSource(11))

	tbl := metrics.NewTable("query workload over the network",
		"query", "results", "probes", "overlap@10", "P2P bytes", "baseline bytes")
	var sumOverlap float64
	count := 0
	for _, q := range w.Queries[:12] {
		peer := n.RandomPeer(rng)
		before := n.Net.Meter().Snapshot()
		got, trace, err := n.SearchCorpusDocs(peer, q.Text())
		if err != nil {
			log.Fatal(err)
		}
		p2pBytes := n.Net.Meter().Snapshot().Sub(before).Bytes

		bBefore := bn.Net.Meter().Snapshot()
		var baseCost baseline.QueryCost
		if len(q.Terms) >= 2 {
			if _, baseCost, err = bn.Base[rng.Intn(numPeers)].Query(context.Background(), q.Terms); err != nil {
				log.Fatal(err)
			}
		}
		_ = baseCost
		baseBytes := bn.Net.Meter().Snapshot().Sub(bBefore).Bytes

		overlap := sim.OverlapAtK(got, n.CentralTopK(q.Text(), 10), 10)
		sumOverlap += overlap
		count++
		tbl.AddRow(q.Text(), len(got), trace.Probes, overlap, p2pBytes, baseBytes)
	}
	fmt.Println(tbl.String())
	fmt.Printf("mean overlap@10 vs centralized BM25 over %d queries: %.3f\n", count, sumOverlap/float64(count))

	// Per-peer load balance of the global index.
	loadTbl := metrics.NewTable("per-peer slice of the global index", "peer", "keys", "postings", "bytes")
	for i, p := range n.Peers {
		st := p.GlobalIndex().Store().Stats()
		loadTbl.AddRow(fmt.Sprintf("peer%03d", i), st.Keys, st.Postings, metrics.HumanBytes(int64(st.Bytes)))
	}
	fmt.Println(loadTbl.String())
}
