// Digital library: the paper's heterogeneity scenario (§4). An external
// search engine — here a small "digital library" with its own indexing
// pipeline — exports its collection as an Alvis document digest; a
// gateway peer imports the digest, re-generates a local index, and makes
// the library searchable by the whole network. Restricted holdings carry
// user/password access rights, and queries can be refined by forwarding
// them to the library's own engine (the paper's two-step retrieval).
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"strings"

	alvisp2p "repro"
	"repro/internal/docs"
)

// libraryHolding models one catalogue record of the external library.
type libraryHolding struct {
	url        string
	title      string
	abstract   string
	restricted bool
}

var catalogue = []libraryHolding{
	{
		url:      "https://library.example/holdings/vldb-2008-alvis",
		title:    "Scalable Peer-to-Peer Text Retrieval in a Structured Network",
		abstract: "Retrieval with multi keyword queries from a global document collection distributed over peers, using indexing term combinations with truncated posting lists.",
	},
	{
		url:      "https://library.example/holdings/icde-2007-hdk",
		title:    "Web Retrieval with Highly Discriminative Keys",
		abstract: "Indexing strategy based on global document frequencies: frequent term combinations are expanded until their posting lists become discriminative.",
	},
	{
		url:      "https://library.example/holdings/sigir-2007-qdi",
		title:    "Text Retrieval with a Query-Driven Index",
		abstract: "Query popularity statistics drive on-demand indexing of term combinations; obsolete keys are removed as the distribution shifts.",
	},
	{
		url:        "https://library.example/holdings/special-collection-manuscript",
		title:      "Restricted Manuscript on Overlay Routing",
		abstract:   "Rare manuscript describing hop space routing tables in skewed identifier distributions.",
		restricted: true,
	},
}

func main() {
	net := alvisp2p.NewInMemoryNetwork()
	cfg := alvisp2p.Config{
		HDK: alvisp2p.HDKConfig{DFMax: 2, SMax: 3, Window: 25, TruncK: 50},
	}

	// Three ordinary peers plus the library's gateway peer.
	var peers []*alvisp2p.Peer
	for i := 0; i < 4; i++ {
		p, err := net.NewPeer(fmt.Sprintf("peer-%d", i), cfg)
		if err != nil {
			log.Fatal(err)
		}
		peers = append(peers, p)
		if i > 0 {
			if err := p.Join(context.Background(), peers[0].Addr()); err != nil {
				log.Fatal(err)
			}
			for _, q := range peers[:i+1] {
				q.Maintain(context.Background())
			}
		}
	}
	for round := 0; round < 4; round++ {
		for _, p := range peers {
			p.Maintain(context.Background())
		}
	}
	gateway := peers[3]

	// --- The external library side -------------------------------------
	// The library runs its own engine; it converts its index into the
	// Alvis digest format (XML) for submission. We build the digest from
	// its catalogue using the same analyzer the network uses.
	var libraryDocs []*docs.Document
	for _, h := range catalogue {
		libraryDocs = append(libraryDocs, &docs.Document{
			Name:  h.url,
			Title: h.title,
			Body:  h.title + " " + h.abstract,
			URL:   h.url,
		})
	}
	digest := docs.BuildDigest(libraryDocs, alvisp2p.DefaultAnalyzer())

	// The digest travels as XML (here through a buffer; in deployment an
	// upload to the gateway peer).
	var wire bytes.Buffer
	if err := docs.WriteDigest(&wire, digest); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("library exported a digest of %d documents (%d bytes of XML)\n\n",
		len(digest.Documents), wire.Len())

	// --- The gateway peer side ------------------------------------------
	received, err := docs.ReadDigest(&wire)
	if err != nil {
		log.Fatal(err)
	}
	n, err := gateway.ImportDigest(received)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("gateway imported %d documents and publishes the index\n\n", n)

	// Apply the library's access policy to the restricted holding.
	for _, d := range gateway.Documents() {
		if strings.Contains(d.Name, "special-collection") {
			gateway.SetAccess(d.ID, alvisp2p.Access{User: "reader", Password: "card-1234"})
		}
	}
	if err := gateway.PublishIndex(context.Background()); err != nil {
		log.Fatal(err)
	}

	// --- Any peer can now find the library's holdings -------------------
	resp, err := peers[1].Search(context.Background(), "retrieval term combinations")
	if err != nil {
		log.Fatal(err)
	}
	results, trace := resp.Results, resp.Trace
	fmt.Printf("search from peer-1: %d results (%d probes)\n", len(results), trace.Probes)
	for i, r := range results {
		access := "public"
		if !r.Public {
			access = "restricted"
		}
		fmt.Printf("  %d. [%.3f] %s (%s)\n     %s\n", i+1, r.Score, r.Title, access, r.URL)
	}
	fmt.Println()

	// The restricted manuscript is discoverable but guarded.
	rresp, err := peers[1].Search(context.Background(), "manuscript overlay routing")
	if err != nil || len(rresp.Results) == 0 {
		log.Fatalf("restricted holding not found: %v", err)
	}
	restricted := rresp.Results
	if _, _, err := peers[1].FetchDocument(context.Background(), restricted[0], "", ""); err != nil {
		fmt.Printf("anonymous fetch of %q correctly denied: %v\n", restricted[0].Title, err)
	}
	title, _, err := peers[1].FetchDocument(context.Background(), restricted[0], "reader", "card-1234")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("with library credentials the manuscript opens: %q\n\n", title)

	// --- Second-step refinement via the library's local engine ----------
	refined, err := peers[1].Refine(context.Background(), "retrieval term combinations", results, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("refined via the holding peers' local engines: %d results\n", len(refined))
	for i, r := range refined {
		fmt.Printf("  %d. [%.3f] %s\n", i+1, r.Score, r.Title)
	}
}
