package alvisp2p_test

import (
	"context"

	"strings"
	"testing"

	alvisp2p "repro"
)

// buildNetwork spins up count peers joined into one ring and returns
// them.
func buildNetwork(t *testing.T, count int, cfg alvisp2p.Config) []*alvisp2p.Peer {
	t.Helper()
	net := alvisp2p.NewInMemoryNetwork()
	peers := make([]*alvisp2p.Peer, count)
	for i := range peers {
		p, err := net.NewPeer("", cfg)
		if err != nil {
			t.Fatal(err)
		}
		peers[i] = p
		if i > 0 {
			if err := p.Join(context.Background(), peers[0].Addr()); err != nil {
				t.Fatal(err)
			}
			for _, q := range peers[:i+1] {
				q.Maintain(context.Background())
			}
		}
	}
	for round := 0; round < 8; round++ {
		for _, p := range peers {
			p.Maintain(context.Background())
		}
	}
	return peers
}

func TestPublicAPIRoundTrip(t *testing.T) {
	cfg := alvisp2p.Config{
		HDK: alvisp2p.HDKConfig{DFMax: 3, SMax: 2, Window: 20, TruncK: 20},
	}
	peers := buildNetwork(t, 5, cfg)

	// Peer 0 shares documents about retrieval; peer 1 about databases.
	texts := []string{
		"peer to peer retrieval with distributed indexes",
		"scalable retrieval in peer networks",
		"structured overlays route queries between peers",
	}
	for i, text := range texts {
		if _, err := peers[0].AddFile("doc"+string(rune('a'+i))+".txt", []byte(text)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := peers[1].AddFile("db.txt", []byte("relational database transactions and recovery")); err != nil {
		t.Fatal(err)
	}
	if err := peers[0].PublishIndex(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := peers[1].PublishIndex(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Any peer can find peer 0's documents.
	resp, err := peers[3].Search(context.Background(), "peer retrieval")
	if err != nil {
		t.Fatal(err)
	}
	results, trace := resp.Results, resp.Trace
	if len(results) == 0 {
		t.Fatal("no results over the public API")
	}
	if trace.Probes == 0 {
		t.Fatal("no probes recorded")
	}
	for _, r := range results {
		if r.Title == "" || r.URL == "" {
			t.Fatalf("incomplete result: %+v", r)
		}
	}

	// Fetch the top document's content.
	title, body, err := peers[3].FetchDocument(context.Background(), results[0], "", "")
	if err != nil {
		t.Fatal(err)
	}
	if title == "" || !strings.Contains(body, "peer") {
		t.Fatalf("fetched %q / %q", title, body)
	}
}

func TestPublicAPIStatsAndStrategy(t *testing.T) {
	net := alvisp2p.NewInMemoryNetwork()
	p, err := net.NewPeer("solo", alvisp2p.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.AddFile("a.txt", []byte("some text about things")); err != nil {
		t.Fatal(err)
	}
	if err := p.PublishIndex(context.Background()); err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	if st.SharedDocuments != 1 || st.LocalTerms == 0 || st.GlobalKeys == 0 {
		t.Fatalf("stats = %+v", st)
	}
	if p.Strategy() != alvisp2p.StrategyHDK {
		t.Fatal("default strategy must be HDK")
	}
	p.SetStrategy(alvisp2p.StrategyQDI)
	if p.Strategy() != alvisp2p.StrategyQDI {
		t.Fatal("strategy switch failed")
	}
}

func TestPublicAPIDigestExchange(t *testing.T) {
	peers := buildNetwork(t, 3, alvisp2p.Config{})
	if _, err := peers[0].AddFile("x.txt", []byte("wonderful unique content here")); err != nil {
		t.Fatal(err)
	}
	dg := peers[0].BuildDigest()
	if len(dg.Documents) != 1 {
		t.Fatalf("digest docs = %d", len(dg.Documents))
	}
	n, err := peers[1].ImportDigest(dg)
	if err != nil || n != 1 {
		t.Fatalf("import: %d, %v", n, err)
	}
	if got := len(peers[1].Documents()); got != 1 {
		t.Fatalf("imported docs = %d", got)
	}
}

func TestPublicAPIAccessControl(t *testing.T) {
	peers := buildNetwork(t, 3, alvisp2p.Config{HDK: alvisp2p.HDKConfig{DFMax: 3, SMax: 2, TruncK: 20}})
	d, err := peers[0].AddDocument(&alvisp2p.Document{
		Name: "private.txt", Title: "Private", Body: "guarded totallyuniqueterm",
		Access: alvisp2p.Access{User: "bob", Password: "s3cret"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := peers[0].PublishIndex(context.Background()); err != nil {
		t.Fatal(err)
	}
	resp, err := peers[2].Search(context.Background(), "totallyuniqueterm")
	if err != nil || len(resp.Results) == 0 {
		t.Fatalf("protected doc must still be discoverable: %v, %d results", err, len(resp.Results))
	}
	results := resp.Results
	if results[0].Public {
		t.Fatal("result must be flagged non-public")
	}
	if _, _, err := peers[2].FetchDocument(context.Background(), results[0], "", ""); err == nil {
		t.Fatal("anonymous fetch must fail")
	}
	if _, _, err := peers[2].FetchDocument(context.Background(), results[0], "bob", "s3cret"); err != nil {
		t.Fatal(err)
	}
	// The owner can open access later.
	if !peers[0].SetAccess(d.ID, alvisp2p.Access{Public: true}) {
		t.Fatal("SetAccess failed")
	}
	if _, _, err := peers[2].FetchDocument(context.Background(), results[0], "", ""); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPITCPPeers(t *testing.T) {
	cfg := alvisp2p.Config{HDK: alvisp2p.HDKConfig{DFMax: 3, SMax: 2, TruncK: 20}}
	a, err := alvisp2p.ListenTCP("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := alvisp2p.ListenTCP("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	if err := b.Join(context.Background(), a.Addr()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		a.Maintain(context.Background())
		b.Maintain(context.Background())
	}
	if _, err := a.AddFile("t.txt", []byte("tcp networking demonstration")); err != nil {
		t.Fatal(err)
	}
	if err := a.PublishIndex(context.Background()); err != nil {
		t.Fatal(err)
	}
	resp, err := b.Search(context.Background(), "tcp networking")
	if err != nil {
		t.Fatal(err)
	}
	results := resp.Results
	if len(results) == 0 {
		t.Fatal("no results over real TCP")
	}
	title, _, err := b.FetchDocument(context.Background(), results[0], "", "")
	if err != nil || title == "" {
		t.Fatalf("fetch over TCP: %q, %v", title, err)
	}
}
