package alvisp2p_test

// Determinism regressions for the concurrent publish/search pipeline:
// with identical inputs, a network running the batched parallel paths
// (Config.Concurrency > 1) must be indistinguishable — global index
// state, ranked results, traces — from one running the sequential paths
// (Concurrency == 1).

import (
	"context"

	"fmt"
	"reflect"
	"testing"

	alvisp2p "repro"
	"repro/internal/corpus"
)

// publishCorpusNetwork builds a fresh ring of nPeers, spreads a
// deterministic synthetic collection over them round-robin, and
// publishes every peer's index.
func publishCorpusNetwork(t *testing.T, nPeers int, cfg alvisp2p.Config) []*alvisp2p.Peer {
	t.Helper()
	peers := buildNetwork(t, nPeers, cfg)
	coll := corpus.Generate(corpus.Params{NumDocs: 60, VocabSize: 300, MeanDocLen: 30, Seed: 42})
	for i, d := range coll.Docs {
		if _, err := peers[i%nPeers].AddFile(d.Name+".txt", []byte(d.Title+"\n"+d.Body)); err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range peers {
		if err := p.PublishIndex(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	return peers
}

// globalIndexFingerprint renders the whole network's global index state
// (per peer: stored keys, lengths, truncation marks) as one string.
func globalIndexFingerprint(peers []*alvisp2p.Peer) string {
	out := ""
	for _, p := range peers {
		store := p.Core().GlobalIndex().Store()
		for _, k := range store.Keys() {
			l, _ := store.Peek(k)
			df, _ := store.ApproxDF(k)
			out += fmt.Sprintf("%s|%s|len=%d|trunc=%v|df=%d\n", p.Addr(), k, l.Len(), l.Truncated, df)
		}
	}
	return out
}

func determinismConfig(concurrency int) alvisp2p.Config {
	return alvisp2p.Config{
		HDK:         alvisp2p.HDKConfig{DFMax: 8, SMax: 3, Window: 12, TruncK: 15},
		Concurrency: concurrency,
	}
}

// TestRepublishAfterJoinReachesNewResponsiblePeer pins a staleness bug
// found driving the TCP binary: a peer that published as a single-node
// ring had warmed its batch-resolver cache with "I own everything"; when
// a second peer joined, republishing kept storing every key at the first
// peer (the cached route still answered), so searches from the joiner
// missed keys the joiner now owned. The resolver must notice the ring
// change and re-resolve.
func TestRepublishAfterJoinReachesNewResponsiblePeer(t *testing.T) {
	net := alvisp2p.NewInMemoryNetwork()
	cfg := alvisp2p.Config{HDK: alvisp2p.HDKConfig{DFMax: 3, SMax: 2, TruncK: 20}}
	a, err := net.NewPeer("first", cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Publish a spread of distinct terms while alone in the ring.
	for i := 0; i < 12; i++ {
		text := fmt.Sprintf("uniqueterm%02d appears in this document about overlays", i)
		if _, err := a.AddFile(fmt.Sprintf("d%02d.txt", i), []byte(text)); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.PublishIndex(context.Background()); err != nil {
		t.Fatal(err)
	}

	b, err := net.NewPeer("second", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Join(context.Background(), a.Addr()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		a.Maintain(context.Background())
		b.Maintain(context.Background())
	}
	// Republish now that responsibility is split between two peers.
	if err := a.PublishIndex(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Every term must be findable from the joiner, and the joiner must
	// actually own part of the index (the migrated keys).
	for i := 0; i < 12; i++ {
		q := fmt.Sprintf("uniqueterm%02d", i)
		bresp, err := b.Search(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		if len(bresp.Results) == 0 {
			t.Fatalf("query %q found nothing after republish", q)
		}
	}
	if b.Stats().GlobalKeys == 0 {
		t.Fatal("no keys migrated to the joiner; fixture proves nothing")
	}
}

func TestParallelPublishIndexStateMatchesSequential(t *testing.T) {
	seq := publishCorpusNetwork(t, 6, determinismConfig(1))
	par := publishCorpusNetwork(t, 6, determinismConfig(8))
	seqFP, parFP := globalIndexFingerprint(seq), globalIndexFingerprint(par)
	if seqFP != parFP {
		t.Fatalf("global index state diverged:\n--- sequential ---\n%s--- parallel ---\n%s", seqFP, parFP)
	}
	if seqFP == "" {
		t.Fatal("fixture published nothing")
	}
}

func TestParallelSearchMatchesSequential(t *testing.T) {
	seq := publishCorpusNetwork(t, 6, determinismConfig(1))
	par := publishCorpusNetwork(t, 6, determinismConfig(8))

	queries := []string{
		"term0001 term0002",
		"term0003 term0010 term0025",
		"term0000 term0001 term0002 term0004",
		"term0042",
		"term0005 nosuchterm",
	}
	sawResults := false
	for qi, q := range queries {
		for pi := range seq {
			seqResp, err := seq[pi].Search(context.Background(), q)
			if err != nil {
				t.Fatal(err)
			}
			parResp, err := par[pi].Search(context.Background(), q)
			if err != nil {
				t.Fatal(err)
			}
			seqRes, seqTrace := seqResp.Results, seqResp.Trace
			parRes, parTrace := parResp.Results, parResp.Trace
			if !reflect.DeepEqual(seqRes, parRes) {
				t.Fatalf("query %d from peer %d: results diverged:\nseq: %+v\npar: %+v", qi, pi, seqRes, parRes)
			}
			// Span trees carry wall-clock timings, so the determinism
			// contract covers the counters only.
			seqCounters, parCounters := *seqTrace, *parTrace
			seqCounters.Spans, parCounters.Spans = nil, nil
			if !reflect.DeepEqual(seqCounters, parCounters) {
				t.Fatalf("query %d from peer %d: traces diverged:\nseq: %+v\npar: %+v", qi, pi, seqCounters, parCounters)
			}
			if len(seqRes) > 0 {
				sawResults = true
			}
		}
	}
	if !sawResults {
		t.Fatal("fixture too small: no query returned results")
	}
}
