package alvisp2p_test

import (
	"context"

	"fmt"
	"strings"
	"testing"

	alvisp2p "repro"
)

// TestReplicatedSearchSurvivesPeerLoss publishes through the public API
// with ReplicationFactor 3, detaches a content-free peer (so only index
// slices — not documents — are lost), repairs the ring, and checks every
// query still finds its documents.
func TestReplicatedSearchSurvivesPeerLoss(t *testing.T) {
	cfg := alvisp2p.Config{
		HDK:               alvisp2p.HDKConfig{DFMax: 4, SMax: 2, Window: 20, TruncK: 20},
		ReplicationFactor: 3,
	}
	peers := buildNetwork(t, 8, cfg)

	texts := []string{
		"peer to peer retrieval with distributed indexes",
		"scalable retrieval in structured peer networks",
		"structured overlays route queries between peers",
		"churn tolerant replication keeps indexes available",
		"successor lists repair rings after failures",
		"truncated posting lists bound retrieval bandwidth",
	}
	for i, text := range texts {
		if _, err := peers[0].AddFile(fmt.Sprintf("doc%d.txt", i), []byte(text)); err != nil {
			t.Fatal(err)
		}
	}
	if err := peers[0].PublishIndex(context.Background()); err != nil {
		t.Fatal(err)
	}

	queries := []string{"peer retrieval", "structured overlays", "replication indexes", "successor rings"}
	before := make(map[string][]string)
	for _, q := range queries {
		resp, err := peers[2].Search(context.Background(), q)
		if err != nil {
			t.Fatalf("pre-churn search %q: %v", q, err)
		}
		for _, r := range resp.Results {
			before[q] = append(before[q], r.Title)
		}
		if len(before[q]) == 0 {
			t.Fatalf("pre-churn search %q found nothing", q)
		}
	}

	// Detach a peer that hosts no documents — only its index slice (and
	// its replica copies) disappear.
	if err := peers[5].Close(); err != nil {
		t.Fatal(err)
	}
	survivors := append(append([]*alvisp2p.Peer(nil), peers[:5]...), peers[6:]...)
	for round := 0; round < 10; round++ {
		for _, p := range survivors {
			p.Maintain(context.Background())
		}
	}

	for _, q := range queries {
		resp, err := peers[2].Search(context.Background(), q)
		if err != nil {
			t.Fatalf("post-churn search %q: %v", q, err)
		}
		var got []string
		for _, r := range resp.Results {
			got = append(got, r.Title)
		}
		if strings.Join(got, "|") != strings.Join(before[q], "|") {
			t.Errorf("search %q changed after peer loss:\n  before: %v\n  after:  %v", q, before[q], got)
		}
	}
}
