// Command alvislint is the multichecker driver for this repository's
// project-specific analyzers (internal/analysis/...): the invariants
// reviews kept re-finding by hand — unclamped wire integers, severed
// context chains, fire-and-forget goroutines, orphaned wire message
// types, deprecated Legacy wrappers, sleep-as-synchronization tests —
// checked by machine on every commit.
//
// Usage:
//
//	go run ./cmd/alvislint ./...
//	go run ./cmd/alvislint -checks wireclamp,ctxflow ./internal/transport
//
// Exit status: 0 clean, 1 diagnostics reported, 2 driver failure.
// Suppressions are inline //alvislint: directives; see DESIGN.md
// "Enforced invariants".
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/registry"
)

func main() {
	checks := flag.String("checks", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list available analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: alvislint [-checks a,b,...] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := registry.All()
	if *list {
		for _, a := range analyzers {
			fmt.Println(a.Doc)
		}
		return
	}
	if *checks != "" {
		var unknown string
		analyzers, unknown = registry.ByName(strings.Split(*checks, ","))
		if unknown != "" {
			fmt.Fprintf(os.Stderr, "alvislint: unknown analyzer %q\n", unknown)
			os.Exit(2)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "alvislint: %v\n", err)
		os.Exit(2)
	}

	found := false
	for _, pkg := range pkgs {
		diags, err := analysis.Run(pkg, analyzers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "alvislint: %v\n", err)
			os.Exit(2)
		}
		for _, d := range diags {
			found = true
			fmt.Printf("%s\n", d)
		}
	}
	if found {
		os.Exit(1)
	}
}
