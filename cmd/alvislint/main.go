// Command alvislint is the multichecker driver for this repository's
// project-specific analyzers (internal/analysis/...): the invariants
// reviews kept re-finding by hand — unclamped wire integers, severed
// context chains, fire-and-forget goroutines, orphaned wire message
// types, deprecated Legacy wrappers, sleep-as-synchronization tests,
// network calls under a mutex, swallowed taxonomy errors, locks leaked
// on early returns — checked by machine on every commit.
//
// Usage:
//
//	go run ./cmd/alvislint ./...
//	go run ./cmd/alvislint -checks lockrpc,errsink,unlockpath ./internal/globalindex
//	go run ./cmd/alvislint -json ./...
//
// Exit status: 0 clean, 1 diagnostics reported, 2 driver failure.
// Suppressions are inline //alvislint: directives; a directive that
// suppresses nothing is itself reported (stalesuppression), so the
// allowlist can only shrink. -json emits one finding per line as
// {"check","pos","message"} for CI annotation. See DESIGN.md
// "Enforced invariants".
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/registry"
)

func main() {
	checks := flag.String("checks", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list available analyzers and exit")
	jsonOut := flag.Bool("json", false, "emit findings as newline-delimited JSON objects (check, pos, message)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: alvislint [-checks a,b,...] [-json] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := registry.All()
	if *list {
		for _, a := range analyzers {
			fmt.Println(a.Doc)
		}
		return
	}
	if *checks != "" {
		var unknown string
		analyzers, unknown = registry.ByName(strings.Split(*checks, ","))
		if unknown != "" {
			fmt.Fprintf(os.Stderr, "alvislint: unknown analyzer %q\n", unknown)
			os.Exit(2)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "alvislint: %v\n", err)
		os.Exit(2)
	}

	// One call graph over everything loaded: the interprocedural
	// analyzers (lockrpc, errsink) join its summaries across package
	// boundaries. Stale-directive checking rides the same run; it only
	// judges directives aimed at analyzers that actually ran.
	runner := &analysis.Runner{
		Graph:                analysis.BuildCallGraph(pkgs),
		CheckStaleDirectives: true,
	}

	found := false
	for _, pkg := range pkgs {
		diags, err := runner.Run(pkg, analyzers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "alvislint: %v\n", err)
			os.Exit(2)
		}
		if len(diags) > 0 {
			found = true
		}
		if *jsonOut {
			if err := analysis.WriteJSON(os.Stdout, diags); err != nil {
				fmt.Fprintf(os.Stderr, "alvislint: %v\n", err)
				os.Exit(2)
			}
			continue
		}
		for _, d := range diags {
			fmt.Printf("%s\n", d)
		}
	}
	if found {
		os.Exit(1)
	}
}
