// Command alviscorpus generates the synthetic document collections and
// query workloads the experiments use, writing them to disk so they can
// be fed to alvisp2p peers (e.g. as shared directories) or inspected.
//
// Usage:
//
//	alviscorpus -docs 1000 -out ./corpus
//	alviscorpus -docs 5000 -queries 200 -out ./corpus -seed 7
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/corpus"
)

func main() {
	numDocs := flag.Int("docs", 1000, "number of documents")
	vocab := flag.Int("vocab", 0, "vocabulary size (0 = same as -docs)")
	topics := flag.Int("topics", 20, "number of topical clusters")
	docLen := flag.Int("doclen", 80, "mean document length in tokens")
	numQueries := flag.Int("queries", 200, "number of distinct workload queries")
	seed := flag.Int64("seed", 1, "generator seed")
	out := flag.String("out", "corpus", "output directory")
	flag.Parse()

	if *vocab == 0 {
		*vocab = *numDocs
	}
	c := corpus.Generate(corpus.Params{
		NumDocs:    *numDocs,
		VocabSize:  *vocab,
		NumTopics:  *topics,
		MeanDocLen: *docLen,
		Seed:       *seed,
	})
	w := corpus.GenerateWorkload(c, corpus.WorkloadParams{
		NumQueries: *numQueries,
		Seed:       *seed + 1,
	})

	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}
	for _, d := range c.Docs {
		content := d.Title + "\n\n" + d.Body + "\n"
		if err := os.WriteFile(filepath.Join(*out, d.Name), []byte(content), 0o644); err != nil {
			log.Fatal(err)
		}
	}
	qf, err := os.Create(filepath.Join(*out, "queries.txt"))
	if err != nil {
		log.Fatal(err)
	}
	defer qf.Close()
	for _, q := range w.Queries {
		fmt.Fprintln(qf, q.Text())
	}
	log.Printf("wrote %d documents and %d queries to %s", len(c.Docs), len(w.Queries), *out)
}
