// Command alvisbench regenerates the experiment tables of EXPERIMENTS.md:
// every scalability and quality claim of the AlvisP2P paper, measured on
// the in-memory reproduction.
//
// Usage:
//
//	alvisbench                 # run every experiment at full scale
//	alvisbench -exp E1,E5      # run selected experiments
//	alvisbench -small          # reduced sizes (the test-suite scale)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/metrics"
	"repro/internal/sim"
)

type experiment struct {
	id   string
	desc string
	run  func(sim.Scale) (*metrics.Table, error)
}

func main() {
	expFlag := flag.String("exp", "all", "comma-separated experiment ids (F1,E1..E14) or 'all'")
	small := flag.Bool("small", false, "run reduced configurations")
	flag.Parse()

	experiments := []experiment{
		{"F1", "Figure 1: lattice processing of query {a,b,c}", func(sim.Scale) (*metrics.Table, error) { return sim.RunF1() }},
		{"E1", "per-query traffic vs collection size (baseline vs HDK vs QDI)", sim.RunE1},
		{"E2", "HDK index storage vs DFmax and smax", sim.RunE2},
		{"E3", "retrieval quality vs centralized BM25", sim.RunE3},
		{"E4", "QDI adaptivity under a shifting workload", sim.RunE4},
		{"E5", "routing hops: network size, skew, finger policy", sim.RunE5},
		{"E6", "congestion control: goodput under load", sim.RunE6},
		{"E7", "lattice cost and precision by query length", sim.RunE7},
		{"E8", "distributed indexing cost", sim.RunE8},
		{"E9", "availability under churn: replication factor 1 vs 3", sim.RunE9},
		{"E10", "wasted-RPC reduction from per-query cancellation", sim.RunE10},
		{"E11", "admission control sheds + hedged replica-read tail latency", sim.RunE11},
		{"E12", "restart recovery: cold rejoin vs WAL/snapshot delta rejoin", sim.RunE12},
		{"E13", "streamed score-bounded top-k vs one-shot full pulls", sim.RunE13},
		{"E14", "hot-key caching + soft replication under zipfian reads", sim.RunE14},
	}

	scale := sim.ScaleFull
	if *small {
		scale = sim.ScaleSmall
	}

	want := map[string]bool{}
	if *expFlag != "all" {
		for _, id := range strings.Split(*expFlag, ",") {
			want[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}

	failed := false
	for _, e := range experiments {
		if len(want) > 0 && !want[e.id] {
			continue
		}
		fmt.Printf("== %s: %s ==\n", e.id, e.desc)
		start := time.Now()
		tbl, err := e.run(scale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", e.id, err)
			failed = true
			continue
		}
		fmt.Println(tbl.String())
		fmt.Printf("(%s in %s)\n\n", e.id, time.Since(start).Round(time.Millisecond))
	}
	if failed {
		os.Exit(1)
	}
}
