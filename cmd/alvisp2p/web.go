package main

import (
	"context"
	"errors"
	"fmt"
	"html/template"
	"io"
	"net/http"
	"strconv"
	"time"

	alvisp2p "repro"
)

// serveWeb runs the paper's web interface mode (§4, Figures 4–6): a
// search page, the shared-documents manager with access rights, a
// statistics screen, and access-controlled document retrieval.
func serveWeb(peer *alvisp2p.Peer, addr string, queryTimeout time.Duration) error {
	h := &webHandler{peer: peer, queryTimeout: queryTimeout}
	mux := http.NewServeMux()
	mux.HandleFunc("/", h.search)
	mux.HandleFunc("/shared", h.shared)
	mux.HandleFunc("/shared/upload", h.upload)
	mux.HandleFunc("/shared/access", h.access)
	mux.HandleFunc("/shared/publish", h.publish)
	mux.HandleFunc("/stats", h.stats)
	mux.HandleFunc("/doc", h.doc)
	return http.ListenAndServe(addr, mux)
}

type webHandler struct {
	peer         *alvisp2p.Peer
	queryTimeout time.Duration
}

var pageTmpl = template.Must(template.New("page").Parse(`<!DOCTYPE html>
<html><head><title>AlvisP2P — {{.Title}}</title>
<style>
 body { font-family: sans-serif; margin: 2em; max-width: 60em; }
 .result { margin: 1em 0; } .score { color: #666; }
 .snippet { color: #333; } .url { color: #0645ad; font-size: 0.9em; }
 nav a { margin-right: 1.5em; }
 table { border-collapse: collapse; } td, th { border: 1px solid #ccc; padding: 0.3em 0.7em; }
 .restricted { color: #a00; }
</style></head><body>
<nav><a href="/">Search</a><a href="/shared">Shared documents</a><a href="/stats">Statistics</a></nav>
<h1>{{.Title}}</h1>
{{.Body}}
</body></html>`))

func render(w http.ResponseWriter, title string, body string) {
	_ = pageTmpl.Execute(w, struct {
		Title string
		Body  template.HTML
	}{Title: title, Body: template.HTML(body)})
}

// search renders the query form and, with ?q=, the result list of
// Figure 5: hosting-peer URL, title, snippet and relevance score.
func (h *webHandler) search(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	q := r.URL.Query().Get("q")
	body := fmt.Sprintf(`<form action="/" method="get">
<input name="q" size="50" value="%s"> <input type="submit" value="Search"></form>`,
		template.HTMLEscapeString(q))
	if q != "" {
		// The HTTP request's context rides along: closing the browser tab
		// cancels the distributed query mid-fan-out.
		var opts []alvisp2p.SearchOption
		if h.queryTimeout > 0 {
			opts = append(opts, alvisp2p.WithTimeout(h.queryTimeout))
		}
		if k, kerr := strconv.Atoi(r.URL.Query().Get("k")); kerr == nil && k > 0 {
			opts = append(opts, alvisp2p.WithTopK(k))
		}
		resp, err := h.peer.Search(r.Context(), q, opts...)
		if err != nil && !errors.Is(err, alvisp2p.ErrPartialResults) {
			body += fmt.Sprintf("<p>error: %s</p>", template.HTMLEscapeString(err.Error()))
		} else {
			results, trace := resp.Results, resp.Trace
			if resp.Partial {
				body += "<p><em>deadline hit — partial results</em></p>"
			}
			body += fmt.Sprintf("<p>%d results — %d keys probed, %d skipped, %d indexed on demand</p>",
				len(results), trace.Probes, trace.Skipped, trace.Activated)
			for i, res := range results {
				restricted := ""
				if !res.Public {
					restricted = ` <span class="restricted">[restricted]</span>`
				}
				body += fmt.Sprintf(`<div class="result"><b>%d.</b> <a href="/doc?peer=%s&id=%d">%s</a>%s
 <span class="score">(%.3f)</span><br><span class="snippet">%s</span><br>
 <span class="url">%s</span></div>`,
					i+1,
					template.HTMLEscapeString(string(res.Ref.Peer)), res.Ref.Doc,
					template.HTMLEscapeString(res.Title), restricted, res.Score,
					template.HTMLEscapeString(res.Snippet),
					template.HTMLEscapeString(res.URL))
			}
		}
	}
	render(w, "Search", body)
}

// shared renders the manager of shared documents (Figure 6).
func (h *webHandler) shared(w http.ResponseWriter, r *http.Request) {
	body := `<form action="/shared/upload" method="post" enctype="multipart/form-data">
<input type="file" name="file"> <input type="submit" value="Add to shared directory"></form>
<form action="/shared/publish" method="post"><input type="submit" value="Publish index to network"></form>
<table><tr><th>id</th><th>name</th><th>title</th><th>access</th><th>change access</th></tr>`
	for _, d := range h.peer.Documents() {
		access := "public"
		if !d.Access.Public {
			access = "user/password"
		}
		body += fmt.Sprintf(`<tr><td>%d</td><td>%s</td><td>%s</td><td>%s</td>
<td><form action="/shared/access" method="post">
<input type="hidden" name="id" value="%d">
<select name="mode"><option value="public">public</option><option value="protected">protected</option></select>
user <input name="user" size="8"> password <input name="password" size="8">
<input type="submit" value="set"></form></td></tr>`,
			d.ID, template.HTMLEscapeString(d.Name), template.HTMLEscapeString(d.Title), access, d.ID)
	}
	body += "</table>"
	render(w, "Manager of shared documents", body)
}

func (h *webHandler) upload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	file, header, err := r.FormFile("file")
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	defer file.Close()
	content, err := io.ReadAll(io.LimitReader(file, 16<<20))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if _, err := h.peer.AddFile(header.Filename, content); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	http.Redirect(w, r, "/shared", http.StatusSeeOther)
}

func (h *webHandler) access(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	id, err := strconv.ParseUint(r.FormValue("id"), 10, 32)
	if err != nil {
		http.Error(w, "bad id", http.StatusBadRequest)
		return
	}
	a := alvisp2p.Access{Public: true}
	if r.FormValue("mode") == "protected" {
		a = alvisp2p.Access{User: r.FormValue("user"), Password: r.FormValue("password")}
	}
	if !h.peer.SetAccess(uint32(id), a) {
		http.Error(w, "no such document", http.StatusNotFound)
		return
	}
	http.Redirect(w, r, "/shared", http.StatusSeeOther)
}

func (h *webHandler) publish(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	if err := h.peer.PublishIndex(context.Background()); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	http.Redirect(w, r, "/shared", http.StatusSeeOther)
}

// stats is the demo's statistics screen: the peer's slice of the global
// index and its local collection.
func (h *webHandler) stats(w http.ResponseWriter, r *http.Request) {
	st := h.peer.Stats()
	body := fmt.Sprintf(`<table>
<tr><th>strategy</th><td>%s</td></tr>
<tr><th>shared documents</th><td>%d</td></tr>
<tr><th>local index terms</th><td>%d</td></tr>
<tr><th>global-index keys held</th><td>%d</td></tr>
<tr><th>global-index postings held</th><td>%d</td></tr>
<tr><th>global-index bytes held</th><td>%d</td></tr>
</table>`, h.peer.Strategy(), st.SharedDocuments, st.LocalTerms,
		st.GlobalKeys, st.GlobalPostings, st.GlobalBytes)
	render(w, "Network statistics", body)
}

// doc fetches a result document from its hosting peer, passing HTTP
// basic-auth credentials through to the document's access policy.
func (h *webHandler) doc(w http.ResponseWriter, r *http.Request) {
	peerAddr := r.URL.Query().Get("peer")
	id, err := strconv.ParseUint(r.URL.Query().Get("id"), 10, 32)
	if err != nil || peerAddr == "" {
		http.Error(w, "need peer and id", http.StatusBadRequest)
		return
	}
	user, pass, _ := r.BasicAuth()
	res := alvisp2p.Result{}
	res.Ref.Peer = alvisp2p.Addr(peerAddr)
	res.Ref.Doc = uint32(id)
	title, docBody, err := h.peer.FetchDocument(r.Context(), res, user, pass)
	if err != nil {
		w.Header().Set("WWW-Authenticate", `Basic realm="alvisp2p document"`)
		http.Error(w, "access denied (provide the document's credentials)", http.StatusUnauthorized)
		return
	}
	render(w, title, "<pre>"+template.HTMLEscapeString(docBody)+"</pre>")
}
