// Command alvisp2p is the AlvisP2P peer client of the paper's §4:
// joining a network is starting the binary with a contact peer's address;
// documents dropped into the shared directory are indexed and become
// searchable network-wide; an optional web interface serves search,
// the shared-documents manager and the network statistics screens.
//
// Usage:
//
//	alvisp2p -listen :4001                          # first peer of a network
//	alvisp2p -listen :4002 -bootstrap host:4001     # join via a contact peer
//	alvisp2p -listen :4003 -web :8080 -shared ./docs -strategy qdi
//
// Without -web the client runs an interactive prompt (the "standalone
// client" mode): type a query to search, or one of the commands
// `add <file>`, `publish`, `stats`, `strategy hdk|qdi`, `quit`.
//
// With -serve the client runs headless — no prompt, no web UI — until
// SIGINT or SIGTERM arrives, then shuts down gracefully (peer leaves
// the network with its watermark persisted) and exits 0. This is the
// mode the cluster harness (internal/cluster) spawns. With
// -metrics-addr the peer's telemetry registry is served at
// http://<addr>/metrics in Prometheus text format. Once the peer is
// joined and its shared documents are published, one machine-readable
// line is printed to stdout for harness consumption:
//
//	ALVISP2P READY addr=<p2p-addr> metrics=<metrics-addr>
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	alvisp2p "repro"
	"repro/internal/telemetry"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:0", "peer-to-peer listen address")
	bootstrap := flag.String("bootstrap", "", "contact peer address (empty = start a new network)")
	web := flag.String("web", "", "web interface listen address (empty = standalone prompt)")
	shared := flag.String("shared", "", "shared directory to index at startup")
	strategy := flag.String("strategy", "hdk", "indexing strategy: hdk or qdi")
	replication := flag.Int("replication", 1, "global-index replication factor (1 = single copy)")
	maintainEvery := flag.Duration("maintain", 5*time.Second, "maintenance interval")
	joinTimeout := flag.Duration("join-timeout", 10*time.Second, "bootstrap join deadline")
	queryTimeout := flag.Duration("query-timeout", 10*time.Second, "per-query deadline (0 = none)")
	topK := flag.Int("topk", 0, "per-query result budget (0 = peer default)")
	admission := flag.Int("admission-watermark", 0,
		"in-flight handler count above which doomed requests are shed (0 = admission control off)")
	admissionFloor := flag.Duration("admission-min-service", 2*time.Millisecond,
		"service-time floor for the admission check before the per-type estimates warm up")
	dataDir := flag.String("data-dir", "",
		"directory for durable global-index storage (WAL + snapshots); empty = in-memory only")
	antiEntropy := flag.Duration("anti-entropy", 0,
		"background replica-repair sweep interval (0 = ring-change events only; needs -replication > 1)")
	resultCache := flag.Int("result-cache", 0,
		"resolved-result cache entries for repeat HDK queries (0 = off)")
	prefixCache := flag.Int("prefix-cache", 0,
		"posting-prefix cache entries for the streamed read path (0 = off)")
	cacheTTL := flag.Duration("cache-ttl", 0,
		"staleness bound for both client caches (0 = the 2s default when a cache is on)")
	hotKeyThreshold := flag.Float64("hot-key-threshold", 0,
		"reads/sec EWMA above which an owned key gets soft replicas (0 = soft replication off)")
	softReplicas := flag.Int("soft-replicas", 2,
		"soft copies pushed per hot key (needs -hot-key-threshold > 0)")
	softReplicaTTL := flag.Duration("soft-replica-ttl", 30*time.Second,
		"lifetime of a pushed soft copy at its holder")
	softReplicaEvery := flag.Duration("soft-replica-interval", 5*time.Second,
		"hot-key promotion sweep interval (0 = manual only; needs -hot-key-threshold > 0)")
	metricsAddr := flag.String("metrics-addr", "",
		"serve the telemetry registry at http://<addr>/metrics (empty = off)")
	serveMode := flag.Bool("serve", false,
		"headless mode: run until SIGINT/SIGTERM, then shut down gracefully (what the cluster harness uses)")
	flag.Parse()

	cfg := alvisp2p.Config{
		ReplicationFactor:   *replication,
		AdmissionWatermark:  *admission,
		AdmissionMinService: *admissionFloor,
		DataDir:             *dataDir,
		AntiEntropyInterval: *antiEntropy,
		ResultCache:         *resultCache,
		PrefixCache:         *prefixCache,
		CacheTTL:            *cacheTTL,
		HotKeyThreshold:     *hotKeyThreshold,
		SoftReplicas:        *softReplicas,
		SoftReplicaTTL:      *softReplicaTTL,
		SoftReplicaInterval: *softReplicaEvery,
	}
	switch strings.ToLower(*strategy) {
	case "hdk":
		cfg.Strategy = alvisp2p.StrategyHDK
	case "qdi":
		cfg.Strategy = alvisp2p.StrategyQDI
	default:
		log.Fatalf("unknown strategy %q (want hdk or qdi)", *strategy)
	}

	peer, err := alvisp2p.ListenTCP(*listen, cfg)
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	defer peer.Close()
	log.Printf("peer listening on %s (strategy %s)", peer.Addr(), peer.Strategy())

	if *bootstrap != "" {
		// The deadline also bounds the bootstrap dial: a dead contact
		// address fails here, not after the OS default TCP timeout.
		ctx, cancel := context.WithTimeout(context.Background(), *joinTimeout)
		err := peer.Join(ctx, alvisp2p.Addr(*bootstrap))
		cancel()
		if err != nil {
			log.Fatalf("join %s: %v", *bootstrap, err)
		}
		log.Printf("joined network via %s", *bootstrap)
	}

	if *shared != "" {
		n, err := indexSharedDir(peer, *shared)
		if err != nil {
			log.Fatalf("shared dir: %v", err)
		}
		log.Printf("indexed %d documents from %s", n, *shared)
		if err := peer.PublishIndex(context.Background()); err != nil {
			log.Printf("publish: %v", err)
		} else {
			log.Printf("published local index to the network")
		}
	}

	// Background maintenance (ring repair, finger refresh, QDI aging).
	go func() {
		for range time.Tick(*maintainEvery) {
			peer.Maintain(context.Background())
		}
	}()

	var msrv *telemetry.MetricsServer
	if *metricsAddr != "" {
		msrv, err = peer.Telemetry().Serve(*metricsAddr)
		if err != nil {
			log.Fatalf("metrics: %v", err)
		}
		log.Printf("metrics on http://%s/metrics", msrv.Addr)
	}

	// The readiness line is the harness contract: printed only after the
	// peer is listening, joined and (when -shared was given) published,
	// so a parent process that has read it may immediately drive load.
	maddr := ""
	if msrv != nil {
		maddr = msrv.Addr
	}
	fmt.Printf("ALVISP2P READY addr=%s metrics=%s\n", peer.Addr(), maddr)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	if *serveMode {
		s := <-sigc
		log.Printf("%v: shutting down", s)
		gracefulExit(peer, msrv)
	}
	go func() {
		s := <-sigc
		log.Printf("%v: shutting down", s)
		gracefulExit(peer, msrv)
	}()

	if *web != "" {
		log.Printf("web interface on http://%s", *web)
		log.Fatal(serveWeb(peer, *web, *queryTimeout))
	}
	prompt(peer, *queryTimeout, *topK)
	gracefulExit(peer, msrv)
}

// gracefulExit tears the process down in shutdown order — metrics
// listener first (scrapers see connection refused, not hangs), then the
// peer (watermark persisted, storage flushed) — and exits 0, or 1 when
// the peer's shutdown surfaced an error.
func gracefulExit(peer *alvisp2p.Peer, msrv *telemetry.MetricsServer) {
	if msrv != nil {
		msrv.Close()
	}
	if err := peer.Close(); err != nil {
		log.Printf("close: %v", err)
		os.Exit(1)
	}
	os.Exit(0)
}

// indexSharedDir loads every regular file of dir into the peer.
func indexSharedDir(peer *alvisp2p.Peer, dir string) (int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, err
	}
	n := 0
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		content, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return n, err
		}
		if _, err := peer.AddFile(e.Name(), content); err != nil {
			log.Printf("skipping %s: %v", e.Name(), err)
			continue
		}
		n++
	}
	return n, nil
}

// prompt is the standalone client loop.
func prompt(peer *alvisp2p.Peer, queryTimeout time.Duration, topK int) {
	sc := bufio.NewScanner(os.Stdin)
	fmt.Println("alvisp2p> type a query, or: add <file> | publish | stats | strategy hdk|qdi | quit")
	var lastResults []alvisp2p.Result
	for {
		fmt.Print("alvisp2p> ")
		if !sc.Scan() {
			return
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "quit", "exit":
			return
		case "add":
			if len(fields) < 2 {
				fmt.Println("usage: add <file>")
				continue
			}
			content, err := os.ReadFile(fields[1])
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			d, err := peer.AddFile(filepath.Base(fields[1]), content)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			fmt.Printf("added %q (id %d); run `publish` to make it searchable\n", d.Title, d.ID)
		case "publish":
			if err := peer.PublishIndex(context.Background()); err != nil {
				fmt.Println("error:", err)
				continue
			}
			fmt.Println("published")
		case "stats":
			st := peer.Stats()
			fmt.Printf("shared docs: %d, local terms: %d, global keys held: %d (%d postings, %d bytes)\n",
				st.SharedDocuments, st.LocalTerms, st.GlobalKeys, st.GlobalPostings, st.GlobalBytes)
		case "strategy":
			if len(fields) == 2 && fields[1] == "qdi" {
				peer.SetStrategy(alvisp2p.StrategyQDI)
			} else if len(fields) == 2 && fields[1] == "hdk" {
				peer.SetStrategy(alvisp2p.StrategyHDK)
			}
			fmt.Println("strategy:", peer.Strategy())
		case "fetch":
			if len(fields) < 2 || len(lastResults) == 0 {
				fmt.Println("usage: fetch <result#> (after a search)")
				continue
			}
			var idx int
			fmt.Sscanf(fields[1], "%d", &idx)
			if idx < 1 || idx > len(lastResults) {
				fmt.Println("no such result")
				continue
			}
			title, body, err := peer.FetchDocument(context.Background(), lastResults[idx-1], "", "")
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			fmt.Printf("--- %s ---\n%s\n", title, body)
		default: // a query
			var opts []alvisp2p.SearchOption
			if queryTimeout > 0 {
				opts = append(opts, alvisp2p.WithTimeout(queryTimeout))
			}
			if topK > 0 {
				opts = append(opts, alvisp2p.WithTopK(topK))
			}
			resp, err := peer.Search(context.Background(), line, opts...)
			if err != nil && !errors.Is(err, alvisp2p.ErrPartialResults) {
				fmt.Println("error:", err)
				continue
			}
			results, trace := resp.Results, resp.Trace
			lastResults = results
			if resp.Partial {
				fmt.Println("(deadline hit: showing partial results)")
			}
			fmt.Printf("%d results (%d probes, %d skipped", len(results), trace.Probes, trace.Skipped)
			if trace.Activated > 0 {
				fmt.Printf(", %d keys indexed on demand", trace.Activated)
			}
			fmt.Println(")")
			for i, r := range results {
				access := ""
				if !r.Public {
					access = " [restricted]"
				}
				fmt.Printf("%2d. %.3f  %s%s\n    %s\n    %s\n", i+1, r.Score, r.Title, access, r.URL, r.Snippet)
			}
		}
	}
}
