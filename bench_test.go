// Benchmarks regenerating the experiment tables (one per experiment of
// EXPERIMENTS.md, at the reduced test scale) plus microbenchmarks of the
// engine's hot paths. Run with:
//
//	go test -bench=. -benchmem
//
// The full-scale tables come from cmd/alvisbench.
package alvisp2p_test

import (
	"context"

	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/dht"
	"repro/internal/hdk"
	"repro/internal/ids"
	"repro/internal/lattice"
	"repro/internal/localindex"
	"repro/internal/metrics"
	"repro/internal/postings"
	"repro/internal/ranking"
	"repro/internal/sim"
	"repro/internal/textproc"
	"repro/internal/transport"
)

// benchTable runs one experiment per iteration and keeps the runtime as
// the reported figure; the table itself is printed once under -v.
func benchTable(b *testing.B, run func(sim.Scale) (*metrics.Table, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		tbl, err := run(sim.ScaleSmall)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 && testing.Verbose() {
			b.Log("\n" + tbl.String())
		}
	}
}

// BenchmarkF1Lattice regenerates Figure 1's worked example.
func BenchmarkF1Lattice(b *testing.B) {
	benchTable(b, func(sim.Scale) (*metrics.Table, error) { return sim.RunF1() })
}

// BenchmarkE1QueryTraffic regenerates the per-query bandwidth comparison
// (single-term baseline vs HDK vs QDI across collection sizes).
func BenchmarkE1QueryTraffic(b *testing.B) { benchTable(b, sim.RunE1) }

// BenchmarkE2HDKStorage regenerates the HDK storage sweep over DFmax and
// smax.
func BenchmarkE2HDKStorage(b *testing.B) { benchTable(b, sim.RunE2) }

// BenchmarkE3Quality regenerates the retrieval-quality comparison against
// centralized BM25.
func BenchmarkE3Quality(b *testing.B) { benchTable(b, sim.RunE3) }

// BenchmarkE4QDIAdaptivity regenerates the QDI index-evolution trace.
func BenchmarkE4QDIAdaptivity(b *testing.B) { benchTable(b, sim.RunE4) }

// BenchmarkE5Routing regenerates the routing-hops table (network size,
// skew, finger policy).
func BenchmarkE5Routing(b *testing.B) { benchTable(b, sim.RunE5) }

// BenchmarkE6Congestion regenerates the congestion-control load sweep.
func BenchmarkE6Congestion(b *testing.B) { benchTable(b, sim.RunE6) }

// BenchmarkE7Lattice regenerates the lattice cost/precision table.
func BenchmarkE7Lattice(b *testing.B) { benchTable(b, sim.RunE7) }

// BenchmarkE8Indexing regenerates the indexing-cost table.
func BenchmarkE8Indexing(b *testing.B) { benchTable(b, sim.RunE8) }

// --- Microbenchmarks -----------------------------------------------------

func BenchmarkPorterStem(b *testing.B) {
	words := []string{"generalizations", "oscillators", "retrieval", "indexing",
		"distributed", "peer", "combinations", "responsibilities"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		textproc.Stem(words[i%len(words)])
	}
}

func BenchmarkAnalyzerTokens(b *testing.B) {
	text := "The AlvisP2P engine enables efficient retrieval with multi-keyword " +
		"queries from a global document collection available in a P2P network."
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		textproc.Default.Tokens(text)
	}
}

func BenchmarkPostingsEncodeDecode(b *testing.B) {
	l := &postings.List{}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		l.Add(postings.Posting{
			Ref:   postings.DocRef{Peer: transport.Addr(fmt.Sprintf("peer%d", i%16)), Doc: uint32(rng.Intn(100000))},
			Score: rng.Float64() * 20,
		})
	}
	l.Normalize()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf := l.EncodeBytes()
		if _, err := postings.DecodeBytes(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPostingsUnion(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	mk := func() *postings.List {
		l := &postings.List{}
		for i := 0; i < 200; i++ {
			l.Add(postings.Posting{
				Ref:   postings.DocRef{Peer: "p", Doc: uint32(rng.Intn(2000))},
				Score: rng.Float64(),
			})
		}
		l.Normalize()
		return l
	}
	a, c, d := mk(), mk(), mk()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		postings.Union(a, c, d)
	}
}

func BenchmarkBM25Score(b *testing.B) {
	stats := &ranking.FixedStats{N: 100000, AvgLen: 80, DF: map[string]int64{
		"peer": 5000, "retrieval": 900, "network": 12000,
	}}
	tf := map[string]int{"peer": 3, "retrieval": 1, "network": 2}
	for i := 0; i < b.N; i++ {
		ranking.DefaultBM25.Score(stats, tf, 95)
	}
}

func BenchmarkLocalIndexSearch(b *testing.B) {
	ix := localindex.New(nil)
	coll := corpus.Generate(corpus.Params{NumDocs: 2000, VocabSize: 2000, Seed: 3})
	for i, d := range coll.Docs {
		ix.Add(uint32(i), d.Body)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Search("term0001 term0010 term0100", 20)
	}
}

func BenchmarkDHTLookup(b *testing.B) {
	net := transport.NewMem()
	rng := rand.New(rand.NewSource(4))
	nodes := make([]*dht.Node, 256)
	for i := range nodes {
		d := transport.NewDispatcher()
		ep := net.Endpoint(fmt.Sprintf("n%d", i), d.Serve)
		nodes[i] = dht.NewNode(ids.ID(rng.Uint64()), ep, d, dht.Options{})
	}
	dht.BuildOracleTables(nodes)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := nodes[i%len(nodes)]
		if _, _, err := src.Lookup(context.Background(), ids.ID(rng.Uint64())); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Parallel pipeline benchmarks ----------------------------------------

// benchPipelineConfig returns the peer configuration for the parallel
// publish/search comparison: concurrency 1 is the sequential baseline,
// higher values enable the per-peer batched fan-out paths.
func benchPipelineConfig(concurrency int) core.Config {
	return core.Config{
		Concurrency: concurrency,
		HDK:         hdk.Config{DFMax: 8, SMax: 3, Window: 10, TruncK: 20},
	}
}

// buildPipelineNetwork stands up a 32-peer network with a distributed
// corpus and published statistics, ready for HDK publication.
func buildPipelineNetwork(b *testing.B, concurrency int) *sim.Network {
	b.Helper()
	net := sim.NewNetwork(sim.Options{NumPeers: 32, Core: benchPipelineConfig(concurrency), Seed: 9})
	coll := corpus.Generate(corpus.Params{NumDocs: 128, VocabSize: 400, MeanDocLen: 40, Seed: 9})
	if err := net.Distribute(coll); err != nil {
		b.Fatal(err)
	}
	if err := net.PublishStats(); err != nil {
		b.Fatal(err)
	}
	return net
}

// BenchmarkPublishParallel compares full-fleet HDK publication through
// the sequential per-key pipeline against the batched concurrent one.
// Besides ns/op it reports the transport round trips per publication
// ("rpcs/op"): the batched path must stay well under half the
// sequential count (the determinism tests prove the index state is
// byte-identical either way).
func BenchmarkPublishParallel(b *testing.B) {
	for _, bc := range []struct {
		name        string
		concurrency int
	}{
		{"sequential", 1},
		{"batched", 8},
	} {
		b.Run(bc.name, func(b *testing.B) {
			var msgs int64
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				net := buildPipelineNetwork(b, bc.concurrency)
				before := net.Net.Meter().Snapshot().Messages
				b.StartTimer()
				if _, _, err := net.PublishHDK(); err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				msgs += net.Net.Meter().Snapshot().Messages - before
				b.StartTimer()
			}
			b.ReportMetric(float64(msgs)/float64(b.N), "rpcs/op")
		})
	}
}

// BenchmarkSearchParallel compares multi-keyword searches through the
// sequential probe loop against the generation-batched exploration, on a
// published 32-peer network. "rpcs/op" counts transport round trips per
// query (steady state: the batched path's resolver cache is warm, as it
// would be on a long-running peer).
func BenchmarkSearchParallel(b *testing.B) {
	queries := []string{
		"term0001 term0002 term0003",
		"term0000 term0004 term0007 term0012",
		"term0002 term0005",
	}
	for _, bc := range []struct {
		name        string
		concurrency int
	}{
		{"sequential", 1},
		{"batched", 8},
	} {
		b.Run(bc.name, func(b *testing.B) {
			net := buildPipelineNetwork(b, bc.concurrency)
			if _, _, err := net.PublishHDK(); err != nil {
				b.Fatal(err)
			}
			peer := net.Peers[5]
			// Warm path (and resolver cache) once.
			for _, q := range queries {
				if _, err := peer.Search(context.Background(), q); err != nil {
					b.Fatal(err)
				}
			}
			before := net.Net.Meter().Snapshot().Messages
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := peer.Search(context.Background(), queries[i%len(queries)]); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			msgs := net.Net.Meter().Snapshot().Messages - before
			b.ReportMetric(float64(msgs)/float64(b.N), "rpcs/op")
		})
	}
}

func BenchmarkLatticeExplore(b *testing.B) {
	// A stubbed fetcher with hits on single terms only: the worst-case
	// exploration for a 4-term query.
	lists := map[string]*postings.List{}
	for _, t := range []string{"a", "b", "c", "d"} {
		l := &postings.List{Truncated: true}
		for i := 0; i < 100; i++ {
			l.Add(postings.Posting{Ref: postings.DocRef{Peer: "p", Doc: uint32(i)}, Score: float64(i)})
		}
		l.Normalize()
		l.Truncated = true
		lists[t] = l
	}
	fetch := lattice.FetchFunc(func(_ context.Context, terms []string, _ int) (*postings.List, bool, error) {
		l, ok := lists[ids.KeyString(terms)]
		if !ok {
			return nil, false, nil
		}
		return l.Clone(), true, nil
	})
	query := []string{"a", "b", "c", "d"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := lattice.Explore(context.Background(), fetch, query, lattice.Config{PruneTruncated: true}); err != nil {
			b.Fatal(err)
		}
	}
}
